"""Surrogate model: determinism across job counts, accuracy, roundtrips."""

import numpy as np
import pytest

from repro.core.resultcache import ResultCache
from repro.core.runner import run_supervised
from repro.errors import ConfigurationError
from repro.surrogate import Corpus, SurrogateModel, harvest, q_error
from repro.surrogate.features import features_for_config
from tests.surrogate.conftest import grid_config


class TestQError:
    def test_symmetric_and_floored_at_one(self):
        assert q_error(2.0, 1.0) == q_error(1.0, 2.0) == 2.0
        assert q_error(5.0, 5.0) == 1.0

    def test_zero_actual_does_not_divide_by_zero(self):
        assert np.isfinite(q_error(1.0, 0.0))


class TestDeterminism:
    def test_refit_is_bit_identical(self, corpus):
        first = SurrogateModel().fit(corpus)
        second = SurrogateModel().fit(corpus)
        assert first._theta.tobytes() == second._theta.tobytes()

    def test_scan_order_does_not_matter(self, corpus):
        reversed_corpus = Corpus(entries=list(reversed(corpus.entries)))
        straight = SurrogateModel().fit(corpus)
        shuffled = SurrogateModel().fit(reversed_corpus)
        assert straight._theta.tobytes() == shuffled._theta.tobytes()
        query = features_for_config(grid_config(cores=2, llc_mb=12))
        assert (straight.predict(query).targets
                == shuffled.predict(query).targets)

    def test_jobs_1_and_jobs_4_train_the_same_model(self, tmp_path):
        """The PR's parity claim end to end: two caches filled by the
        same grid at different job counts yield bit-identical corpora,
        coefficients, and predictions."""
        grid = [grid_config(cores=c, llc_mb=l)
                for c in (1, 4) for l in (2, 8, 24)]
        models = []
        for jobs in (1, 4):
            cache = ResultCache(tmp_path / f"jobs{jobs}")
            report = run_supervised(grid, jobs=jobs, cache=cache)
            assert not report.failures
            models.append(SurrogateModel().fit(harvest(cache)))
        serial, parallel = models
        assert serial._theta.tobytes() == parallel._theta.tobytes()
        assert serial._train_x.tobytes() == parallel._train_x.tobytes()
        query = features_for_config(grid_config(cores=2, llc_mb=12))
        assert serial.predict(query).targets == parallel.predict(query).targets


class TestAccuracy:
    def test_loo_q_error_within_budget(self, model, corpus):
        report = model.q_error_report(corpus)
        assert report["overall"]["median"] <= 1.15
        assert all(stats["median"] >= 1.0 for stats in report.values())

    def test_uncertainty_grows_off_corpus(self, model):
        near = model.predict(features_for_config(grid_config(cores=2,
                                                             llc_mb=8)))
        far = model.predict(features_for_config(
            grid_config(workload="tpch", scale_factor=300, cores=32,
                        llc_mb=40, duration=100.0)))
        assert far.uncertainty > near.uncertainty

    def test_extreme_extrapolation_stays_finite(self, model):
        prediction = model.predict(features_for_config(
            grid_config(workload="tpce", scale_factor=15000,
                        duration=100000.0)))
        assert all(np.isfinite(v) for v in prediction.targets.values())


class TestLifecycle:
    def test_too_small_corpus_rejected(self, corpus):
        with pytest.raises(ConfigurationError):
            SurrogateModel().fit(Corpus(entries=corpus.entries[:1]))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            SurrogateModel().predict(np.zeros(1))

    def test_save_load_roundtrip_predicts_identically(self, model, tmp_path):
        path = model.save(tmp_path / "model.json")
        loaded = SurrogateModel.load(path)
        query = features_for_config(grid_config(cores=8, llc_mb=12))
        assert loaded.predict(query).targets == model.predict(query).targets
        assert loaded.predict(query).uncertainty == pytest.approx(
            model.predict(query).uncertainty)

    def test_load_rejects_foreign_schema(self, model, tmp_path):
        path = model.save(tmp_path / "model.json")
        path.write_text(path.read_text().replace("llc_mb", "llc_ways"))
        with pytest.raises(ConfigurationError):
            SurrogateModel.load(path)

    def test_coefficient_report_covers_every_feature(self, model):
        from repro.surrogate.features import FEATURE_NAMES

        report = model.coefficient_report()
        assert sorted(name for name, _ in report) == sorted(FEATURE_NAMES)
        weights = [weight for _, weight in report]
        assert weights == sorted(weights, reverse=True)
