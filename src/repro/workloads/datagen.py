"""Synthetic data generation for the benchmark catalogs.

The performance study never inspects row *values* — the simulation works
from cardinalities and byte sizes — but examples, debugging, and tests of
the catalog layer benefit from being able to materialize representative
tuples.  This module produces deterministic synthetic rows for any table
in the built schemas: keys are sequential, foreign keys reference valid
ranges, numeric attributes are drawn from seeded distributions, and
string attributes are sized to the table's row width.

Generation is streaming (batched generators), so even a Table 2-sized
catalog can be sampled without materializing it.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.engine.catalog import Database, Table
from repro.errors import WorkloadError

_ALPHABET = np.array(list(string.ascii_lowercase + " "), dtype="U1")


@dataclass(frozen=True)
class ColumnSpec:
    """Shape of one synthetic column."""

    name: str
    kind: str          # "key", "fk", "int", "float", "date", "text"
    width_bytes: int = 8
    fk_cardinality: int = 0   # for kind == "fk"


def default_columns(table: Table) -> List[ColumnSpec]:
    """A plausible column layout for a table given its row width.

    One sequential key, one foreign key, a date and a float measure, and
    text padding to reach the row width.
    """
    fixed = 8 + 8 + 8 + 8
    text_width = max(8, int(table.row_bytes) - fixed)
    return [
        ColumnSpec(name=f"{table.name}_key", kind="key"),
        ColumnSpec(name="fk", kind="fk", fk_cardinality=max(1, table.rows // 10)),
        ColumnSpec(name="event_date", kind="date"),
        ColumnSpec(name="amount", kind="float"),
        ColumnSpec(name="payload", kind="text", width_bytes=text_width),
    ]


class DataGenerator:
    """Deterministic synthetic tuple source for one database."""

    def __init__(self, database: Database, seed: int = 0):
        self.database = database
        self.seed = seed

    def _rng(self, table: str, batch_index: int) -> np.random.Generator:
        return np.random.default_rng(
            abs(hash((self.seed, self.database.name, table, batch_index))) % 2**63
        )

    def rows(
        self,
        table_name: str,
        limit: Optional[int] = None,
        batch_size: int = 10_000,
        columns: Optional[List[ColumnSpec]] = None,
    ) -> Iterator[Dict[str, object]]:
        """Yield synthetic rows for *table_name* (up to *limit*)."""
        table = self.database.table(table_name)
        specs = columns or default_columns(table)
        total = table.rows if limit is None else min(limit, table.rows)
        produced = 0
        batch_index = 0
        while produced < total:
            count = min(batch_size, total - produced)
            batch = self._batch(table, specs, produced, count, batch_index)
            for i in range(count):
                yield {spec.name: batch[spec.name][i] for spec in specs}
            produced += count
            batch_index += 1

    def _batch(
        self,
        table: Table,
        specs: List[ColumnSpec],
        offset: int,
        count: int,
        batch_index: int,
    ) -> Dict[str, np.ndarray]:
        rng = self._rng(table.name, batch_index)
        columns: Dict[str, np.ndarray] = {}
        for spec in specs:
            if spec.kind == "key":
                columns[spec.name] = np.arange(offset + 1, offset + count + 1)
            elif spec.kind == "fk":
                columns[spec.name] = rng.integers(
                    1, spec.fk_cardinality + 1, size=count
                )
            elif spec.kind == "int":
                columns[spec.name] = rng.integers(0, 1_000_000, size=count)
            elif spec.kind == "float":
                columns[spec.name] = np.round(rng.gamma(2.0, 150.0, size=count), 2)
            elif spec.kind == "date":
                # Days since the epoch of the benchmark window.
                columns[spec.name] = rng.integers(0, 2557, size=count)  # ~7 years
            elif spec.kind == "text":
                chars_per_row = max(1, spec.width_bytes)
                flat = rng.integers(0, len(_ALPHABET), size=count * chars_per_row)
                text = _ALPHABET[flat].reshape(count, chars_per_row)
                columns[spec.name] = np.array(["".join(row) for row in text])
            else:
                raise WorkloadError(f"unknown column kind {spec.kind!r}")
        return columns

    def sample(self, table_name: str, n: int = 5) -> List[Dict[str, object]]:
        """A small materialized sample (for examples and debugging)."""
        return list(self.rows(table_name, limit=n))

    def estimated_bytes(self, table_name: str) -> float:
        """Uncompressed bytes the full table would occupy if materialized."""
        table = self.database.table(table_name)
        return table.rows * table.row_bytes


def validate_against_catalog(generator: DataGenerator, table_name: str,
                             sample_size: int = 1000) -> Dict[str, object]:
    """Sanity-check generated data against catalog metadata.

    Returns a report with key uniqueness and monotonicity checks —
    used by tests and as a demonstration that the synthetic substitution
    is internally consistent.
    """
    rows = list(generator.rows(table_name, limit=sample_size))
    table = generator.database.table(table_name)
    key_column = f"{table_name}_key"
    keys = [row[key_column] for row in rows]
    return {
        "table": table_name,
        "rows_sampled": len(rows),
        "keys_unique": len(set(keys)) == len(keys),
        "keys_monotone": all(b > a for a, b in zip(keys, keys[1:])),
        "within_cardinality": (max(keys) if keys else 0) <= table.rows,
    }
