"""Generic discrete-event simulation kernel.

This subpackage is deliberately independent of the database/hardware model:
it provides an event heap with a simulation clock (:mod:`repro.sim.events`),
generator-based cooperating processes (:mod:`repro.sim.process`), shared
resources with queueing (:mod:`repro.sim.resources`), deterministic random
streams (:mod:`repro.sim.randomness`), and statistics accumulators
(:mod:`repro.sim.stats`).
"""

from repro.sim.events import Event, EventLoop
from repro.sim.process import Process, Simulator, Timeout, WaitEvent
from repro.sim.randomness import RandomStreams
from repro.sim.resources import FcfsServer, ProcessorSharingServer, TokenBucket
from repro.sim.stats import Cdf, Histogram, TimeWeightedStat, WelfordStat

__all__ = [
    "Event",
    "EventLoop",
    "Process",
    "Simulator",
    "Timeout",
    "WaitEvent",
    "RandomStreams",
    "FcfsServer",
    "ProcessorSharingServer",
    "TokenBucket",
    "Cdf",
    "Histogram",
    "TimeWeightedStat",
    "WelfordStat",
]
