#!/usr/bin/env python3
"""CAT cache partitioning between co-located workloads (§10's research
question: "even a well-designed server running diverse database
workloads will experience cache under-utilization — can caches be
dynamically reconfigured to use the excess capacity?").

Uses the sufficient-LLC analysis (Table 4's statistic) to find how much
cache each tenant actually needs, then checks that giving a transactional
tenant its sufficient allocation and handing the rest to an analytical
tenant keeps both within a few percent of their full-cache performance.
"""

from repro.core import ResourceAllocation, run_experiment
from repro.core.analysis import sufficient_allocation
from repro.core.report import format_series, format_table

SIZES = [2, 4, 6, 8, 10, 12, 16, 20, 24, 32, 40]


def llc_curve(workload: str, sf: int, duration: float):
    perf = []
    for size in SIZES:
        m = run_experiment(
            workload, sf,
            allocation=ResourceAllocation(llc_mb=size),
            duration=duration,
        )
        perf.append(m.primary_metric)
    return perf


def main() -> None:
    print("Profiling tenant A: ASDB SF=2000 (transactional)...")
    asdb = llc_curve("asdb", 2000, duration=8.0)
    print("Profiling tenant B: TPC-H SF=100 (analytical)...")
    tpch = llc_curve("tpch", 100, duration=900.0)

    print(format_series("llc_mb", SIZES, {
        "asdb_rel": [v / asdb[-1] for v in asdb],
        "tpch_rel": [v / tpch[-1] for v in tpch],
    }, title="\nRelative performance vs CAT allocation"))

    need_asdb = sufficient_allocation(SIZES, asdb, 0.95)
    need_tpch = sufficient_allocation(SIZES, tpch, 0.95)
    total = 40
    leftover = total - need_asdb - need_tpch
    rows = [
        ("ASDB (OLTP tenant)", f"{need_asdb} MB"),
        ("TPC-H (DSS tenant)", f"{need_tpch} MB"),
        ("Unclaimed LLC", f"{leftover} MB"),
    ]
    print(format_table(["tenant", "sufficient LLC (>=95%)"], rows,
                       title="\nCAT partitioning plan (40 MB total)"))
    if leftover > 0:
        print(
            f"\n{leftover} MB of LLC remains after both tenants reach 95% of "
            "their standalone performance — capacity CAT could lend to a "
            "third tenant or reconfigure for other uses, confirming the "
            "paper's over-provisioning finding."
        )


if __name__ == "__main__":
    main()
