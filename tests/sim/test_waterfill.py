"""Tests for the water-filling capped-share server."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.process import Simulator, Timeout
from repro.sim.waterfill import WaterfillServer, waterfill


class TestWaterfillFunction:
    def test_empty(self):
        assert waterfill(10.0, []) == []

    def test_single_uncapped(self):
        assert waterfill(10.0, [100.0]) == [10.0]

    def test_single_capped(self):
        assert waterfill(10.0, [3.0]) == [3.0]

    def test_redistribution_unweighted(self):
        rates = waterfill(10.0, [1.0, 100.0, 100.0], weights=[1.0, 1.0, 1.0])
        assert rates == [1.0, 4.5, 4.5]

    def test_default_weights_are_caps(self):
        # A 32-worker job weighs 32x a single-worker job.
        rates = waterfill(10.0, [1.0, 32.0])
        assert rates[0] == pytest.approx(10.0 * 1 / 33)
        assert rates[1] == pytest.approx(10.0 * 32 / 33)

    def test_all_capped_under_capacity(self):
        rates = waterfill(10.0, [2.0, 3.0])
        assert rates == [2.0, 3.0]

    def test_equal_split_when_no_caps_bind(self):
        rates = waterfill(9.0, [100.0, 100.0, 100.0])
        assert rates == [3.0, 3.0, 3.0]

    @given(
        st.floats(min_value=0.1, max_value=1000.0),
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20),
    )
    def test_invariants(self, capacity, caps):
        rates = waterfill(capacity, caps)
        assert len(rates) == len(caps)
        assert sum(rates) <= capacity + 1e-6
        for rate, cap in zip(rates, caps):
            assert 0 <= rate <= cap + 1e-9
        # Work conservation: either capacity is exhausted or every job is
        # at its cap.
        if sum(caps) >= capacity:
            assert sum(rates) == pytest.approx(capacity, rel=1e-6)
        else:
            assert rates == pytest.approx(caps)


class TestWaterfillServer:
    def test_cap_limits_single_job(self):
        sim = Simulator()
        server = WaterfillServer(sim, capacity=32.0)
        def worker():
            yield from server.submit(8.0, cap=4.0)
            return sim.now
        proc = sim.spawn(worker())
        sim.run()
        assert proc.result == pytest.approx(2.0)

    def test_two_jobs_share_with_caps(self):
        sim = Simulator()
        server = WaterfillServer(sim, capacity=4.0)
        results = {}
        def worker(name, work, cap):
            yield from server.submit(work, cap=cap)
            results[name] = sim.now
        # Weighted shares: caps 1 and 3 exactly consume the capacity, so
        # each runs at its cap.
        sim.spawn(worker("capped", 2.0, 1.0))
        sim.spawn(worker("wide", 6.0, 3.0))
        sim.run()
        assert results["capped"] == pytest.approx(2.0)
        assert results["wide"] == pytest.approx(2.0)

    def test_set_capacity_midflight(self):
        sim = Simulator()
        server = WaterfillServer(sim, capacity=2.0)
        finish = []
        def worker():
            yield from server.submit(4.0, cap=100.0)
            finish.append(sim.now)
        def shrink():
            yield Timeout(1.0)
            server.set_capacity(1.0)
        sim.spawn(worker())
        sim.spawn(shrink())
        sim.run()
        # 2 units done in first second, remaining 2 at rate 1 -> t=3.
        assert finish == [pytest.approx(3.0)]

    def test_utilization_accounting(self):
        sim = Simulator()
        server = WaterfillServer(sim, capacity=2.0)
        def worker():
            yield from server.submit(2.0, cap=1.0)
        sim.spawn(worker())
        sim.run()
        # 2 units of work on capacity 2 over 2 seconds -> 50% utilization.
        assert server.utilization(end_time=2.0) == pytest.approx(0.5)

    def test_work_conservation_many_jobs(self):
        sim = Simulator()
        server = WaterfillServer(sim, capacity=3.0)
        amounts = [0.5, 1.0, 2.0, 4.0, 0.25]
        def worker(amount):
            yield from server.submit(amount, cap=2.0)
        for amount in amounts:
            sim.spawn(worker(amount))
        sim.run()
        assert server.total_work_done == pytest.approx(sum(amounts))


class TestWaterfillServerProperties:
    """Property-based checks on the shared core pool."""

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0),   # work
                st.floats(min_value=0.5, max_value=32.0),   # cap
                st.floats(min_value=0.0, max_value=2.0),    # arrival delay
            ),
            min_size=1,
            max_size=12,
        ),
        st.floats(min_value=1.0, max_value=32.0),
    )
    def test_work_conservation_and_completion(self, jobs, capacity):
        from repro.sim.process import Simulator, Timeout
        sim = Simulator()
        server = WaterfillServer(sim, capacity=capacity)
        done = []
        def worker(delay, work, cap):
            yield Timeout(delay)
            yield from server.submit(work, cap=cap)
            done.append(sim.now)
        for work, cap, delay in jobs:
            sim.spawn(worker(delay, work, cap))
        sim.run()
        assert len(done) == len(jobs)
        total_work = sum(w for w, _, _ in jobs)
        assert server.total_work_done == pytest.approx(total_work, rel=1e-6)
        # No job finishes faster than running alone at its cap allows.
        makespan = max(done)
        lower_bound = max(
            delay + work / min(cap, capacity) for work, cap, delay in jobs
        )
        assert makespan >= lower_bound - 1e-6

    @given(st.floats(min_value=0.1, max_value=8.0))
    def test_single_job_rate_is_min_of_cap_and_capacity(self, cap):
        from repro.sim.process import Simulator
        sim = Simulator()
        server = WaterfillServer(sim, capacity=4.0)
        def worker():
            yield from server.submit(8.0, cap=cap)
            return sim.now
        proc = sim.spawn(worker())
        sim.run()
        assert proc.result == pytest.approx(8.0 / min(cap, 4.0), rel=1e-6)
