"""Engine backend personalities: one engine recipe per consolidation target.

The paper's thesis is that OLTP, DSS, and HTAP workloads have sharply
different resource sensitivities — which is exactly the information a
consolidation layer needs to place queries on the *right* engine.  An
:class:`EngineBackend` captures one engine *personality*: a named recipe
that turns (machine, workload, allocation) into a configured
:class:`~repro.engine.engine.SqlEngine`, with its own cost model,
execution-characteristic transform, and RESOURCE_SEMAPHORE policy, all
riding the shared :mod:`repro.hardware` substrate.

The default hooks reproduce the historical monolithic construction from
:class:`repro.core.experiment.Experiment` exactly — the ``rowstore-oltp``
personality overrides nothing, which is how it stays bit-identical to the
seed engine on every existing figure/sensitivity path.

Backends self-register into :data:`BACKENDS` via
:func:`register_backend`; :func:`make_backend` instantiates by name.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Type

from repro.engine.engine import SqlEngine
from repro.engine.optimizer.cost_model import CostModel
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.sqlos import ExecutionCharacteristics
from repro.hardware.machine import Machine
from repro.errors import ConfigurationError
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - hint-only (avoids a repro.core cycle)
    from repro.core.knobs import ResourceAllocation

#: The personality the monolithic engine became; every default path uses it.
DEFAULT_BACKEND = "rowstore-oltp"

#: Default fleet for routed runs, in routing-priority order: the seed
#: engine first (the rule-based fallback target), then the specialists.
DEFAULT_ROUTER_BACKENDS = (
    "rowstore-oltp", "columnstore-dss", "elastic-serverless"
)


@dataclass(frozen=True)
class BackendResourceProfile:
    """Coarse resource-delivery scores the router keys placement on.

    Scores are relative to the rowstore baseline (1.0); they summarize
    what the personality's cost model implies without re-deriving it per
    query.  ResQ (PAPERS.md) motivates keying placement on predicted
    resource profiles rather than workload names.
    """

    #: Relative sequential-scan throughput (batch mode >> row-at-a-time).
    scan_bandwidth_score: float = 1.0
    #: Relative point-access throughput (B-tree seeks vs segment reads).
    point_lookup_score: float = 1.0
    #: Fraction of ideal speedup retained at deep MAXDOP.
    parallel_efficiency: float = 0.6
    #: How gracefully the backend sheds memory pressure (spill quality).
    memory_elasticity: float = 0.3
    #: Expected provisioning delay before a cold backend serves (§cold start).
    startup_seconds: float = 0.0


class EngineBackend(abc.ABC):
    """One engine personality: a named engine-construction recipe.

    Subclasses override the narrow hooks (cost model, execution
    transform, governor policy, engine class) rather than
    :meth:`build_engine` itself, so the shared construction order —
    governor, then engine with the workload's parameters — stays
    identical across personalities.
    """

    #: Registry key ("rowstore-oltp", "columnstore-dss", ...).
    name: str = ""
    #: One-line description for ``repro backends``.
    description: str = ""
    #: Engine class to instantiate (personalities may subclass SqlEngine).
    engine_class: Type[SqlEngine] = SqlEngine

    # -- hooks ---------------------------------------------------------------

    def governor_for(self, allocation: ResourceAllocation) -> ResourceGovernor:
        """The seed allocation→governor mapping; personalities may layer
        their own RESOURCE_SEMAPHORE defaults on top (only when the
        allocation itself left overload protection off)."""
        return ResourceGovernor(
            max_dop=allocation.effective_max_dop,
            grant_percent=allocation.grant_percent,
            grant_timeout_s=allocation.grant_timeout_s,
            small_query_bypass_bytes=allocation.small_query_bypass_bytes,
            max_queue_depth=allocation.max_queue_depth,
            on_grant_timeout=allocation.on_grant_timeout,
        )

    def execution_characteristics(
        self, workload: Workload
    ) -> ExecutionCharacteristics:
        """The workload's calibrated CPU/cache parameters, optionally
        transformed by the personality (batch mode, txn penalties)."""
        return workload.execution_characteristics()

    def cost_model(self) -> Optional[CostModel]:
        """Optimizer cost constants; None = the calibrated default."""
        return None

    def engine_parameters(self, workload: Workload) -> Dict:
        """Extra :class:`SqlEngine` keyword arguments (workload's plus
        any personality-specific ones)."""
        return dict(workload.engine_parameters())

    @abc.abstractmethod
    def resource_profile(self) -> BackendResourceProfile:
        """The coarse scores the router places queries with."""

    # -- construction --------------------------------------------------------

    def build_engine(
        self,
        machine: Machine,
        workload: Workload,
        allocation: ResourceAllocation,
    ) -> SqlEngine:
        """Construct this personality's engine on *machine*.

        Mirrors the historical ``Experiment._build_engine`` recipe; with
        every hook at its default the result is bit-identical to the
        seed construction.
        """
        return self.engine_class(
            machine=machine,
            database=workload.database,
            execution=self.execution_characteristics(workload),
            governor=self.governor_for(allocation),
            cost_model=self.cost_model(),
            backend_name=self.name,
            **self.engine_parameters(workload),
        )


#: Backend registry, filled by :func:`register_backend` at import time.
BACKENDS: Dict[str, Type[EngineBackend]] = {}


def register_backend(cls: Type[EngineBackend]) -> Type[EngineBackend]:
    """Class decorator: add a backend personality to the registry."""
    if not cls.name:
        raise ValueError("backend classes must set a name")
    if cls.name in BACKENDS:
        raise ValueError(f"duplicate backend name {cls.name!r}")
    BACKENDS[cls.name] = cls
    return cls


def make_backend(name: str) -> EngineBackend:
    """Instantiate a backend personality by registry name."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; one of {sorted(BACKENDS)}"
        ) from None
    return cls()


def backend_names() -> tuple:
    """All registered personality names, sorted."""
    return tuple(sorted(BACKENDS))
