"""Replicated shard groups: quorum WAL shipping over SqlEngine replicas.

A :class:`ReplicaGroup` wraps N :class:`~repro.engine.engine.SqlEngine`
instances — each on its own :class:`~repro.hardware.machine.Machine`,
all sharing one simulator clock — with primary/secondary roles.  Writes
commit on the primary's :class:`~repro.engine.wal.WriteAheadLog`, ship
the resulting record to every reachable secondary over the LSN stream
(:meth:`~repro.engine.wal.WriteAheadLog.apply_shipped`), and are
acknowledged to the client only once durable on a **majority** of
replicas.  That synchronous-quorum rule is what makes the chaos
scheduler's first invariant hold by construction: an acknowledged write
is durable on ``N//2 + 1`` replicas, so any minority of failures leaves
at least one surviving copy, and promotion (which picks the
max-durable-LSN eligible replica) always lands on a history containing
every acknowledged record.

Failure handling is epoch-fenced: every promotion bumps the group epoch,
and a commit that started under an older epoch — or whose primary
crashed or was fenced mid-flush — is *not* acknowledged; the client
retries against the new primary (duplicate records are the idempotent
retry model, exactly as in production quorum systems).  A rejoining
replica first truncates any divergent tail (records durable only on the
old primary, never acknowledged), then catches up: a bulk restore up to
the primary's published checkpoint LSN, then the streamed tail.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.engine.engine import SqlEngine
from repro.engine.wal import WalRecord
from repro.errors import FaultInjectionError, RecoveryError
from repro.faults.recovery import RecoveryResult, WalImage, recover, \
    verify_committed_durable
from repro.hardware.machine import Machine
from repro.sim.process import Simulator, Timeout

ROLE_PRIMARY = "primary"
ROLE_SECONDARY = "secondary"


class Replica:
    """One engine instance in a replica group, plus its fault state."""

    def __init__(self, index: int, machine: Machine, engine: SqlEngine,
                 role: str = ROLE_SECONDARY):
        self.index = index
        self.machine = machine
        self.engine = engine
        self.role = role
        self.up = True
        self.fenced = False
        self.partitioned = False
        self.recoveries = 0
        self.crash_image: Optional[WalImage] = None

    @property
    def wal(self):
        return self.engine.wal

    @property
    def durable_lsn(self) -> int:
        return self.engine.wal.durable_lsn

    @property
    def checkpoint_lsn(self) -> int:
        return self.engine.checkpoint.checkpoint_lsn

    @property
    def reachable(self) -> bool:
        """Up and on the majority side of the network."""
        return self.up and not self.partitioned

    @property
    def eligible(self) -> bool:
        """Allowed to hold (or be promoted to) the primary role."""
        return self.reachable and not self.fenced

    def fence(self) -> None:
        """Strip write authority; cleared only by a completed rejoin."""
        self.fenced = True

    def crash(self) -> RecoveryResult:
        """Crash now: freeze the durable image, replay, verify, go down.

        Runs the same ARIES-style recovery as the single-engine
        :class:`~repro.faults.injector.FaultInjector` crash driver —
        every durably-committed transaction must be recovered — and
        keeps the image so :meth:`restart` can discard any device write
        that completed after the crash instant.
        """
        wal = self.wal
        committed = tuple(r.txn_id for r in wal.durable_records if r.txn_id >= 0)
        image = WalImage.capture(wal, checkpoint_lsn=self.checkpoint_lsn)
        result = recover(image)
        verify_committed_durable(committed, result)
        self.crash_image = image
        self.up = False
        self.fence()
        return result

    def restart(self) -> None:
        """Come back up with exactly the durable state captured at crash.

        An in-flight flush or shipped apply that finished *after* the
        crash instant would otherwise leave ghost records: on real
        hardware that write never hit the platter, so the restart
        truncates back to the crash image.  The replica stays fenced
        until :meth:`ReplicaGroup.rejoin` completes catch-up.
        """
        if self.crash_image is not None:
            self.wal.truncate_to(self.crash_image.durable_lsn)
            self.crash_image = None
        self.up = True
        self.recoveries += 1


class ReplicaGroup:
    """N replicas, one primary, synchronous majority-quorum replication."""

    def __init__(self, sim: Simulator, replicas: List[Replica],
                 name: str = "shard0", retry_interval: float = 0.005):
        if not replicas:
            raise FaultInjectionError("a replica group needs replicas")
        self._sim = sim
        self.name = name
        self.replicas = list(replicas)
        self.retry_interval = retry_interval
        self.replicas[0].role = ROLE_PRIMARY
        for replica in self.replicas[1:]:
            replica.role = ROLE_SECONDARY
        self.epoch = 0
        #: Acknowledged records by LSN — the durability obligation the
        #: chaos audit checks against surviving replicas.
        self.acked_records: Dict[int, WalRecord] = {}
        self.failovers: List[Dict[str, float]] = []
        #: Sim time the current primary was observed failed (set by the
        #: fault driver / failure detector; cleared when a failover
        #: completes) — feeds the bounded-unavailability invariant.
        self.primary_down_at: Optional[float] = None
        #: Client-observed write outage windows (seconds each).
        self.unavailability: List[float] = []
        self._outage_started: Optional[float] = None
        # -- counters --------------------------------------------------------
        self.writes_submitted = 0
        self.writes_acked = 0
        self.write_retries = 0
        self.fenced_rejections = 0
        self.records_shipped = 0
        self.checkpoint_catchups = 0
        self.catchup_records = 0
        self.log_truncations = 0

    # -- membership --------------------------------------------------------------

    @property
    def primary(self) -> Optional[Replica]:
        for replica in self.replicas:
            if replica.role == ROLE_PRIMARY:
                return replica
        return None

    @property
    def quorum(self) -> int:
        return len(self.replicas) // 2 + 1

    @property
    def reachable_count(self) -> int:
        return sum(1 for r in self.replicas if r.reachable)

    @property
    def writable(self) -> bool:
        primary = self.primary
        return (primary is not None and primary.eligible
                and self.reachable_count >= self.quorum)

    def eligible_candidates(self) -> List[Replica]:
        return [r for r in self.replicas if r.eligible]

    def install_primary(self, candidate: Replica, reason: str = "failover") -> None:
        """Fence the old primary, promote *candidate*, bump the epoch."""
        old = self.primary
        if old is candidate:
            return
        if old is not None:
            old.fence()
            old.role = ROLE_SECONDARY
        candidate.role = ROLE_PRIMARY
        candidate.fenced = False
        self.epoch += 1
        now = self._sim.now
        event = {
            "epoch": float(self.epoch),
            "at": now,
            "old": float(old.index) if old is not None else -1.0,
            "new": float(candidate.index),
            "failed_at": (self.primary_down_at
                          if self.primary_down_at is not None else now),
        }
        self.failovers.append(event)
        self.primary_down_at = None

    def note_primary_down(self) -> None:
        """Record when the primary's fault was injected (invariant (b)
        measures promotion latency from this instant)."""
        if self.primary_down_at is None:
            self.primary_down_at = self._sim.now

    # -- the write path ----------------------------------------------------------

    def submit_write(self, nbytes: float, txn_id: int = -1) -> Generator:
        """Generator: commit on the primary, replicate to quorum, ack.

        Returns the acknowledged :class:`~repro.engine.wal.WalRecord`.
        Blocks — retrying on the group's clock — while the group is not
        writable (primary down/fenced or quorum unreachable); the outage
        is accounted into :attr:`unavailability`.  A commit overtaken by
        a failover (epoch change, fenced or crashed primary) is never
        acknowledged: the client retries against the new primary, and
        the orphaned record is exactly the divergent tail
        :meth:`rejoin` truncates.
        """
        self.writes_submitted += 1
        while True:
            if not self.writable:
                if self._outage_started is None:
                    self._outage_started = self._sim.now
                yield Timeout(self.retry_interval)
                continue
            primary = self.primary
            epoch = self.epoch
            try:
                lsn = yield from primary.wal.commit(nbytes, txn_id=txn_id)
            except FaultInjectionError:
                self.write_retries += 1
                continue
            record = WalRecord(lsn=lsn, nbytes=nbytes, txn_id=txn_id)
            if epoch != self.epoch or primary.fenced or not primary.up:
                # Fencing: the primary lost its role mid-commit, so the
                # record may exist only on a deposed history — never ack.
                self.fenced_rejections += 1
                self.write_retries += 1
                continue
            acks = yield from self._replicate(primary, record)
            if epoch != self.epoch or acks < self.quorum:
                self.write_retries += 1
                continue
            if self._outage_started is not None:
                self.unavailability.append(self._sim.now - self._outage_started)
                self._outage_started = None
            self.writes_acked += 1
            self.acked_records[record.lsn] = record
            return record

    def _replicate(self, primary: Replica, record: WalRecord) -> Generator:
        """Ship *record* to every reachable secondary; count durable acks.

        Shipping includes each target's missing backlog (records it
        skipped while partitioned), so secondary logs stay gap-free —
        the property that makes "max durable LSN" mean "longest
        acknowledged prefix" at promotion time.
        """
        targets = [r for r in self.replicas
                   if r is not primary and r.reachable]
        procs = [
            self._sim.spawn(self._apply(primary, target, record),
                            name=f"ship-{self.name}-{target.index}")
            for target in targets
        ]
        acks = 1  # durable on the primary itself
        for proc in procs:
            yield proc.done
            if proc.result:
                acks += 1
        self.records_shipped += len(targets)
        return acks

    def _apply(self, primary: Replica, target: Replica,
               record: WalRecord) -> Generator:
        backlog = [r for r in primary.wal.durable_records
                   if target.durable_lsn < r.lsn < record.lsn]
        try:
            yield from target.wal.apply_shipped(backlog + [record])
        except (FaultInjectionError, RecoveryError):
            return False
        # A crash or partition during the transfer voids the ack: the
        # target's restart image predates this record.
        return target.reachable

    # -- rejoin / catch-up -------------------------------------------------------

    def rejoin(self, replica: Replica) -> Generator:
        """Generator: catch a healed replica up and clear its fence.

        Three phases: (1) divergence repair — truncate any records the
        current primary's history does not contain (durable only on a
        deposed primary, by construction never acknowledged); (2)
        checkpoint-based bulk restore of everything up to the primary's
        published checkpoint LSN in one device transfer; (3) streamed
        tail apply of the records above the checkpoint.  Returns the
        number of records caught up.
        """
        primary = self.primary
        if primary is None or replica is primary:
            replica.fenced = False
            return 0
        by_lsn = {r.lsn: r for r in primary.wal.durable_records}
        divergent = [r for r in replica.wal.durable_records
                     if by_lsn.get(r.lsn) != r]
        if divergent:
            replica.wal.truncate_to(divergent[0].lsn - 1)
            self.log_truncations += 1
        missing = [r for r in primary.wal.durable_records
                   if r.lsn > replica.durable_lsn]
        checkpoint = primary.checkpoint_lsn
        bulk = [r for r in missing if r.lsn <= checkpoint]
        tail = [r for r in missing if r.lsn > checkpoint]
        if bulk:
            self.checkpoint_catchups += 1
            yield from replica.wal.apply_shipped(bulk)
        if tail:
            yield from replica.wal.apply_shipped(tail)
        self.catchup_records += len(missing)
        replica.role = ROLE_SECONDARY
        replica.fenced = False
        return len(missing)

    # -- audits / reporting ------------------------------------------------------

    def audit_durability(self) -> Dict[str, object]:
        """Invariant (a): no acknowledged durable write lost.

        Every acknowledged LSN must be durable on at least one surviving
        (up) replica.  With synchronous majority acks this can only fail
        if a majority of replicas lost state simultaneously — which the
        chaos scheduler never injects, so a non-empty ``lost`` list is a
        genuine replication bug, not an expected outcome.
        """
        survivors = [r for r in self.replicas if r.up] or self.replicas
        durable = set()
        for replica in survivors:
            durable.update(r.lsn for r in replica.wal.durable_records)
        lost = sorted(lsn for lsn in self.acked_records if lsn not in durable)
        return {
            "acked": len(self.acked_records),
            "lost": lost,
            "survivors": [r.index for r in survivors],
        }

    def summary(self) -> Dict[str, float]:
        """Counter snapshot (feeds the chaos report and DMVs)."""
        return {
            "replicas": float(len(self.replicas)),
            "epoch": float(self.epoch),
            "writes_acked": float(self.writes_acked),
            "write_retries": float(self.write_retries),
            "fenced_rejections": float(self.fenced_rejections),
            "records_shipped": float(self.records_shipped),
            "failovers": float(len(self.failovers)),
            "checkpoint_catchups": float(self.checkpoint_catchups),
            "catchup_records": float(self.catchup_records),
            "log_truncations": float(self.log_truncations),
            "unavailable_seconds": float(sum(self.unavailability)),
        }
