"""Tests for the supervised sweep runner: crash retry with backoff,
timeouts, error policies, journal-based resume, and the chained
``map_ordered`` error reporting (ISSUE: robustness tentpole)."""

import time

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.journal import (
    STATUS_CRASH,
    STATUS_OK,
    STATUS_TIMEOUT,
    SweepJournal,
)
from repro.core.resultcache import ResultCache
from repro.core.runner import (
    JOURNAL_BASENAME,
    SupervisionPolicy,
    map_ordered,
    run_configs,
    run_supervised,
)
from repro.errors import ConfigurationError, SweepExecutionError
from repro.faults.spec import WorkerCrash, WorkerStall


def cfg(seed=0, faults=(), duration=0.5):
    return ExperimentConfig(workload="asdb", scale_factor=2000,
                            duration=duration, seed=seed, faults=tuple(faults))


def fast_policy(**overrides):
    defaults = dict(retries=2, backoff=0.01, backoff_factor=2.0)
    defaults.update(overrides)
    return SupervisionPolicy(**defaults)


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        for bad in (
            dict(timeout=0.0),
            dict(retries=-1),
            dict(backoff=-0.1),
            dict(backoff_factor=0.5),
            dict(on_error="explode"),
            dict(poll_interval=0.0),
        ):
            with pytest.raises(ConfigurationError):
                SupervisionPolicy(**bad)

    def test_retry_delay_grows_exponentially_and_clamps(self):
        policy = SupervisionPolicy(backoff=1.0, backoff_factor=2.0,
                                   max_backoff=5.0)
        assert policy.retry_delay(1) == 1.0
        assert policy.retry_delay(2) == 2.0
        assert policy.retry_delay(3) == 4.0
        assert policy.retry_delay(4) == 5.0   # clamped

    def test_deterministic_errors_not_retryable(self):
        policy = SupervisionPolicy()
        assert policy.retryable("crash")
        assert not policy.retryable("error")
        assert not policy.retryable("timeout")
        assert SupervisionPolicy(retry_timeouts=True).retryable("timeout")


class TestCrashRetry:
    def test_crash_is_retried_and_succeeds(self):
        """attempts=1 means the fault fires once: attempt 0 crashes,
        attempt 1 (after backoff) runs clean."""
        report = run_supervised([cfg(faults=[WorkerCrash(attempts=1)])],
                                policy=fast_policy())
        assert report.ok
        assert report.retries == 1
        assert report.measurements[0] is not None

    def test_backoff_delays_the_retry(self):
        # Jitter off: the un-jittered path must sleep the full ceiling.
        start = time.monotonic()
        run_supervised([cfg(faults=[WorkerCrash(attempts=2)])],
                       policy=fast_policy(backoff=0.2, retries=2,
                                          backoff_jitter=False))
        # Two failures: 0.2s + 0.4s backoff before the clean third attempt.
        assert time.monotonic() - start >= 0.6

    def test_exhausted_retries_collects_failure(self):
        report = run_supervised([cfg(faults=[WorkerCrash(attempts=99)])],
                                policy=fast_policy(retries=1,
                                                   on_error="collect"))
        assert not report.ok
        assert report.measurements[0] is None
        (failure,) = report.failures
        assert failure.kind == "crash"
        assert failure.index == 0
        assert failure.attempts == 2  # initial try + one retry

    def test_raise_policy_chains_the_cause(self):
        with pytest.raises(SweepExecutionError) as info:
            run_supervised([cfg(faults=[WorkerCrash(attempts=99)])],
                           policy=fast_policy(retries=0))
        assert info.value.index == 0
        assert info.value.__cause__ is not None

    def test_skip_policy_leaves_hole_without_record(self):
        report = run_supervised([cfg(faults=[WorkerCrash(attempts=99)]),
                                 cfg(seed=1)],
                                policy=fast_policy(retries=0, on_error="skip"))
        assert report.measurements[0] is None
        assert report.measurements[1] is not None
        assert report.failures == []


class TestDeterministicErrors:
    def test_bad_config_fails_without_retry(self):
        bad = ExperimentConfig(workload="nope", scale_factor=1, duration=0.5)
        report = run_supervised([bad],
                                policy=fast_policy(on_error="collect"))
        (failure,) = report.failures
        assert failure.kind == "error"
        assert failure.attempts == 1      # never retried
        assert report.retries == 0

    def test_run_configs_raises_on_holes(self):
        bad = ExperimentConfig(workload="nope", scale_factor=1, duration=0.5)
        with pytest.raises(SweepExecutionError):
            run_configs([bad], policy=fast_policy(on_error="collect"))


class TestPoolSupervision:
    """Real process-pool behaviours: hard worker death and timeouts."""

    def test_hard_worker_crash_survived(self):
        """WorkerCrash in a pool worker os._exits -> BrokenProcessPool;
        the supervisor rebuilds the pool and retries."""
        configs = [cfg(faults=[WorkerCrash(attempts=1)]), cfg(seed=1)]
        report = run_supervised(configs, jobs=2, policy=fast_policy())
        assert report.ok
        assert report.pool_restarts >= 1
        assert report.retries >= 1

    def test_timeout_reaps_stalled_worker_and_spares_the_rest(self):
        configs = [cfg(faults=[WorkerStall(seconds=60.0, attempts=1)]),
                   cfg(seed=1)]
        report = run_supervised(
            configs, jobs=2,
            policy=fast_policy(timeout=10.0, on_error="collect"),
        )
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert failure.index == 0
        assert report.measurements[1] is not None

    def test_unfaulted_points_bit_identical_to_fault_free_run(self):
        configs = [cfg(seed=1), cfg(faults=[WorkerCrash(attempts=99)]),
                   cfg(seed=2)]
        report = run_supervised(
            configs, jobs=2, policy=fast_policy(retries=1, on_error="collect"),
        )
        clean = run_configs([cfg(seed=1), cfg(seed=2)])
        assert report.measurements[0].primary_metric == clean[0].primary_metric
        assert report.measurements[2].primary_metric == clean[1].primary_metric
        assert report.measurements[1] is None


class TestJournalResume:
    def test_second_invocation_reruns_only_failures(self, tmp_path):
        cache = ResultCache(tmp_path)
        configs = [cfg(seed=1),
                   cfg(seed=2, faults=[WorkerCrash(attempts=3)])]
        policy = fast_policy(retries=1, on_error="collect")
        cold = run_supervised(configs, cache=cache, policy=policy)
        assert cold.measurements[0] is not None
        assert cold.measurements[1] is None

        journal = SweepJournal(tmp_path / JOURNAL_BASENAME)
        crashed = cold.failures[0].digest
        assert journal.attempts(crashed) == 2
        assert journal.failed_digests() == [crashed]

        # Resume: point 0 is a cache hit; point 1 continues at global
        # attempt 2, burns its last faulty attempt, and succeeds on
        # attempt 3 -- the spec fails three times EVER, not per run.
        warm = run_supervised(configs, cache=cache, policy=policy)
        assert warm.ok
        assert warm.cache_hits == 1
        assert warm.measurements[1] is not None

    def test_journal_statuses_recorded(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_supervised([cfg(faults=[WorkerCrash(attempts=1)])],
                       cache=cache, policy=fast_policy())
        journal = SweepJournal(tmp_path / JOURNAL_BASENAME)
        statuses = [e["status"] for e in journal._entries]
        assert statuses == [STATUS_CRASH, STATUS_OK]

    def test_journal_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.record("abc", STATUS_TIMEOUT, attempt=0, index=4)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"digest": "def", "status": "ok"')   # torn line
        reloaded = SweepJournal(path)
        assert len(reloaded) == 1
        assert reloaded.attempts("abc") == 1
        assert reloaded.last_status("def") is None


class TestMapOrderedErrorReporting:
    def test_serial_wraps_with_index_and_cause(self):
        def explode(x):
            if x == 2:
                raise ValueError("kaboom")
            return x

        with pytest.raises(SweepExecutionError) as info:
            map_ordered(explode, [0, 1, 2, 3])
        assert info.value.index == 2
        assert isinstance(info.value.__cause__, ValueError)
        assert "kaboom" in str(info.value)

    def test_parallel_wraps_with_index_and_cause(self):
        with pytest.raises(SweepExecutionError) as info:
            map_ordered(_explode_on_two, [0, 1, 2, 3], jobs=2)
        assert info.value.index == 2
        assert isinstance(info.value.__cause__, ValueError)

    def test_item_description_is_bounded(self):
        with pytest.raises(SweepExecutionError) as info:
            map_ordered(_explode_on_two, [2 for _ in range(1)],
                        jobs=1)
        assert len(info.value.item) <= 120


def _explode_on_two(x):
    """Module-level so the process pool can pickle it."""
    if x == 2:
        raise ValueError("kaboom")
    return x


class TestBackoffJitter:
    """Full jitter on crash-retry backoff (satellite: retry storms)."""

    def supervisor(self, **policy_overrides):
        from repro.core.runner import _Supervisor

        policy = fast_policy(backoff=1.0, backoff_factor=2.0,
                             **policy_overrides)
        return _Supervisor([], jobs=1, cache=None, policy=policy,
                           journal=None)

    def item(self, digest="d" * 8, failures=1):
        from repro.core.runner import _Item

        return _Item(index=0, config=cfg(), digest=digest,
                     base_attempts=0, failures=failures)

    def test_jitter_stays_under_the_exponential_ceiling(self):
        sup = self.supervisor()
        for failures in (1, 2, 3, 4):
            item = self.item(failures=failures)
            ceiling = sup.policy.retry_delay(failures)
            for _ in range(20):
                delay = sup._backoff_delay(item)
                assert 0.0 <= delay <= ceiling

    def test_jitter_off_sleeps_the_full_ceiling(self):
        sup = self.supervisor(backoff_jitter=False)
        item = self.item(failures=2)
        assert sup._backoff_delay(item) == sup.policy.retry_delay(2)

    def test_same_seed_and_digest_redraw_the_same_schedule(self):
        sup_a, sup_b = self.supervisor(), self.supervisor()
        draws_a = [sup_a._backoff_delay(self.item()) for _ in range(5)]
        draws_b = [sup_b._backoff_delay(self.item()) for _ in range(5)]
        assert draws_a == draws_b
        # Successive draws advance — this is a schedule, not a constant.
        assert len(set(draws_a)) > 1

    def test_different_digests_decorrelate(self):
        sup = self.supervisor()
        a = [sup._backoff_delay(self.item(digest="a" * 8)) for _ in range(5)]
        b = [sup._backoff_delay(self.item(digest="b" * 8)) for _ in range(5)]
        assert a != b

    def test_different_jitter_seeds_decorrelate(self):
        a = [self.supervisor(jitter_seed=1)._backoff_delay(self.item())
             for _ in range(3)]
        b = [self.supervisor(jitter_seed=2)._backoff_delay(self.item())
             for _ in range(3)]
        assert a != b

    def test_retry_delay_itself_is_unchanged_by_jitter(self):
        policy = SupervisionPolicy(backoff=1.0, backoff_factor=2.0,
                                   max_backoff=5.0, backoff_jitter=True)
        assert [policy.retry_delay(n) for n in (1, 2, 3, 4)] == [
            1.0, 2.0, 4.0, 5.0]
