"""SQLOS: the engine's runtime layer binding workers to the hardware.

For one experiment run, :class:`SqlOs` freezes the run's execution
characteristics (MPKI at the current CAT allocation, CPI, per-core
instruction rate, SMT-adjusted aggregate capacity, DRAM throttling) and
exposes:

* :meth:`run_on_cpu` — a generator that executes an instruction budget on
  the shared core pool, capped at a query's DOP;
* PCM-style cumulative counters for the sampler
  (:mod:`repro.hardware.counters`).

Hyper-threading enters twice, both via mechanisms from
:mod:`repro.hardware.cpu`: paired logical cores multiply capacity by the
SMT yield (a function of the memory-stall fraction), and the doubled
thread count inflates working-set footprints, raising MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from repro.hardware.counters import (
    DRAM_READ_BYTES,
    DRAM_WRITE_BYTES,
    INSTRUCTIONS,
    LLC_MISSES,
    SSD_READ_BYTES,
    SSD_WRITE_BYTES,
)
from repro.hardware.cpu import ThreadCharacteristics
from repro.hardware.machine import Machine
from repro.hardware.mrc import MissRatioCurve
from repro.sim.process import Timeout
from repro.sim.resources import FcfsServer
from repro.sim.waterfill import WaterfillServer
from repro.units import CACHE_LINE


@dataclass(frozen=True)
class ExecutionCharacteristics:
    """Per-workload execution parameters feeding the CPU model."""

    cpi_base: float
    mlp: float
    miss_penalty_cycles: float
    mrc: MissRatioCurve
    #: How much the aggregate working set grows when every physical core
    #: runs two hardware threads (1.0 = no growth).
    smt_footprint_growth: float = 0.5
    #: Multiplier on per-transaction instruction budgets.  Backend
    #: personalities without a row-oriented point-access path (batch-mode
    #: columnstores) pay this penalty on OLTP work; 1.0 = rowstore parity.
    txn_instruction_scale: float = 1.0


class SqlOs:
    """Frozen runtime state for one experiment run.

    ``shared_cpu_pool`` routes transaction CPU through the same
    water-filling core pool queries use, so concurrent OLTP and DSS
    components genuinely contend for cores (the HTAP configuration).
    Pure OLTP runs keep the O(1)-per-transaction FCFS pool.
    """

    def __init__(self, machine: Machine, execution: ExecutionCharacteristics,
                 shared_cpu_pool: bool = False):
        self.shared_cpu_pool = shared_cpu_pool
        self.machine = machine
        self.execution = execution
        shape = machine.cpuset.shape()
        self.shape = shape
        paired_fraction = shape.smt_paired_cores / max(1, shape.physical_cores)
        footprint_scale = 1.0 + execution.smt_footprint_growth * paired_fraction
        self.mpki = execution.mrc.mpki(
            machine.llc.effective_bytes(), footprint_scale=footprint_scale
        )
        # Crossing the socket boundary makes a fraction of misses remote
        # (Fig 2's caption); blend the DRAM penalty accordingly.
        numa_ratio = (
            machine.numa.effective_miss_penalty(shape)
            / machine.numa.local_penalty_cycles
        )
        self.thread_characteristics = ThreadCharacteristics(
            cpi_base=execution.cpi_base,
            mpki=self.mpki,
            miss_penalty_cycles=execution.miss_penalty_cycles * numa_ratio,
            mlp=execution.mlp,
        )
        total_physical = machine.topology.total_physical_cores
        self.per_core_ips = machine.cpu_model.single_thread_ips(
            self.thread_characteristics, shape.physical_cores, total_physical
        )
        raw_capacity = machine.cpu_model.capacity_core_equivalents(
            self.thread_characteristics, shape
        )
        # DRAM bandwidth throttle: if running flat-out would exceed the
        # achievable bandwidth, the core pool slows down to match it.
        full_miss_rate = raw_capacity * self.per_core_ips * self.mpki / 1000.0
        throttle = machine.dram.throttle_factor(full_miss_rate, shape.sockets_used)
        throttle *= machine.numa.qpi_throttle_factor(full_miss_rate, shape)
        self.dram_throttle = throttle
        self.capacity_core_equivalents = raw_capacity * throttle
        self.cpu = WaterfillServer(
            machine.sim, capacity=self.capacity_core_equivalents, name="sqlos-cpu"
        )
        # OLTP path: transactions run at DOP 1, one worker per core, so an
        # FCFS multi-server queue is an exact and O(1)-per-transaction
        # model.  Server count is the rounded core-equivalent capacity;
        # service times are rescaled so aggregate throughput stays exact.
        self._oltp_servers = max(1, int(round(self.capacity_core_equivalents)))
        self._oltp_rate_scale = self._oltp_servers / self.capacity_core_equivalents
        self.oltp_cpu = FcfsServer(
            machine.sim, capacity=self._oltp_servers, name="sqlos-oltp-cpu"
        )
        self._oltp_work_done = 0.0

    # -- fault injection -------------------------------------------------------

    def rebind_cpuset(self) -> None:
        """Re-read the machine's cpuset and rescale the core pools.

        Supports mid-run core offlining (:mod:`repro.faults`): after the
        injector shrinks (or restores) ``machine.cpuset``, aggregate
        capacity is recomputed through the same SMT/NUMA/DRAM-throttle
        pipeline used at construction and both pools are resized in
        place.  Per-workload characteristics (MPKI at the CAT
        allocation, per-core instruction rate) stay frozen — offlining
        changes how many cores run, not what each executes.
        """
        shape = self.machine.cpuset.shape()
        self.shape = shape
        raw_capacity = self.machine.cpu_model.capacity_core_equivalents(
            self.thread_characteristics, shape
        )
        full_miss_rate = raw_capacity * self.per_core_ips * self.mpki / 1000.0
        throttle = self.machine.dram.throttle_factor(full_miss_rate, shape.sockets_used)
        throttle *= self.machine.numa.qpi_throttle_factor(full_miss_rate, shape)
        self.dram_throttle = throttle
        self.capacity_core_equivalents = raw_capacity * throttle
        self.cpu.set_capacity(self.capacity_core_equivalents)
        # Keep the FCFS rate scale consistent with the new server count
        # so aggregate OLTP throughput tracks the shrunk capacity.
        self._oltp_servers = max(1, int(round(self.capacity_core_equivalents)))
        self._oltp_rate_scale = self._oltp_servers / self.capacity_core_equivalents
        self.oltp_cpu.set_capacity(self._oltp_servers)

    # -- execution ------------------------------------------------------------

    def cpu_seconds(self, instructions: float) -> float:
        """Single-core-equivalent seconds needed for an instruction budget."""
        return instructions / self.per_core_ips

    def _active_core_estimate(self, dop: int) -> int:
        """How many physical cores are busy right now, for turbo scaling.

        Turbo frequency follows *active* cores, not allocated ones: a
        serial query alone on a 32-core allocation still runs at the
        single-core turbo bin (this is why Fig 6's parallelism-insensitive
        queries are flat rather than faster at small MAXDOP).
        """
        physical = self.shape.physical_cores
        busy = self.cpu.active_weight() + self.oltp_cpu.in_use
        return max(1, min(physical, int(busy) + min(dop, physical)))

    def run_on_cpu(self, instructions: float, dop: int = 1) -> Generator:
        """Generator: execute *instructions* using at most *dop* cores.

        The job's rate cap carries the turbo adjustment: a core running
        nearly alone clocks at its turbo bin and genuinely delivers more
        than one all-core-frequency core-equivalent; under full load the
        water-filling shares dominate and the boost is moot.  Keeping the
        *work* unscaled keeps instruction accounting exact.
        """
        work = self.cpu_seconds(instructions)
        active = self._active_core_estimate(dop)
        total_physical = self.machine.topology.total_physical_cores
        freq_alloc = self.machine.cpu_model.frequency(
            self.shape.physical_cores, total_physical
        )
        freq_active = self.machine.cpu_model.frequency(active, total_physical)
        turbo_boost = freq_active / freq_alloc
        cap = float(min(dop, max(1, self.shape.logical_cpus))) * turbo_boost
        yield from self.cpu.submit(work, cap=cap)
        return None

    def run_transaction_cpu(self, instructions: float) -> Generator:
        """Generator: execute a DOP-1 transaction on the core pool."""
        instructions *= self.execution.txn_instruction_scale
        if self.shared_cpu_pool:
            yield from self.run_on_cpu(instructions, dop=1)
            return None
        work = self.cpu_seconds(instructions)
        yield from self.oltp_cpu.acquire()
        yield Timeout(work * self._oltp_rate_scale)
        self.oltp_cpu.release()
        self._oltp_work_done += work
        return None

    @property
    def smt_multiplier(self) -> float:
        stall = self.thread_characteristics.memory_stall_fraction()
        return self.machine.cpu_model.smt.multiplier(stall)

    # -- counters ------------------------------------------------------------------

    def instructions_retired(self) -> float:
        # Advance the server's accounting to "now" before reading.
        self.cpu._advance()
        return (self.cpu.total_work_done + self._oltp_work_done) * self.per_core_ips

    def counter_totals(self) -> Dict[str, float]:
        instructions = self.instructions_retired()
        misses = instructions * self.mpki / 1000.0
        dram_read = misses * CACHE_LINE
        dram_write = dram_read * self.machine.dram.writeback_fraction
        return {
            INSTRUCTIONS: instructions,
            LLC_MISSES: misses,
            DRAM_READ_BYTES: dram_read,
            DRAM_WRITE_BYTES: dram_write,
            SSD_READ_BYTES: self.machine.ssd.bytes_read,
            SSD_WRITE_BYTES: self.machine.ssd.bytes_written,
        }
