"""Tests for the persistent warm worker pool (ISSUE: perf tentpole)."""

import os

import pytest

from repro.core import workerpool


def _square(x):
    return x * x


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test starts and ends with an empty pool registry."""
    workerpool.shutdown_all()
    yield
    workerpool.shutdown_all()


class TestAcquire:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            workerpool.acquire(0)

    def test_pool_is_reused_across_acquires(self):
        first = workerpool.acquire(2)
        second = workerpool.acquire(2)
        assert second is first
        assert second.generation == first.generation
        assert workerpool.active_pools() == {2: first}

    def test_distinct_worker_counts_get_distinct_pools(self):
        two = workerpool.acquire(2)
        one = workerpool.acquire(1)
        assert one is not two
        assert set(workerpool.active_pools()) == {1, 2}

    def test_pool_executes_work(self):
        pool = workerpool.acquire(2)
        futures = [pool.submit(_square, n) for n in range(5)]
        assert [f.result(timeout=60) for f in futures] == [0, 1, 4, 9, 16]
        assert pool.tasks_dispatched == 5

    def test_start_method_is_platform_preferred(self):
        pool = workerpool.acquire(1)
        assert pool.method == workerpool.start_method()
        assert pool.method in ("fork", "forkserver", "spawn")


class TestRetire:
    def test_retire_removes_from_registry(self):
        pool = workerpool.acquire(1)
        workerpool.retire(pool)
        assert workerpool.active_pools() == {}

    def test_acquire_after_retire_is_a_new_generation(self):
        first = workerpool.acquire(1)
        workerpool.retire(first)
        second = workerpool.acquire(1)
        assert second is not first
        assert second.generation > first.generation

    def test_retire_of_stale_pool_leaves_current_alone(self):
        first = workerpool.acquire(1)
        workerpool.retire(first)
        second = workerpool.acquire(1)
        workerpool.retire(first)  # stale handle, retired again
        assert workerpool.active_pools() == {1: second}

    def test_kill_terminates_worker_processes(self):
        pool = workerpool.acquire(1)
        pid = pool.submit(os.getpid).result(timeout=60)
        workerpool.retire(pool, kill=True)
        # The worker is gone (or a zombie about to be reaped) — either
        # way the registry no longer hands it out.
        assert workerpool.active_pools() == {}
        fresh = workerpool.acquire(1)
        assert fresh.generation > pool.generation
        assert fresh.submit(os.getpid).result(timeout=60) != pid


class TestBrokenPools:
    def test_broken_pool_is_replaced_on_acquire(self):
        pool = workerpool.acquire(1)
        pool.submit(os.getpid).result(timeout=60)
        workerpool.kill_workers(pool.executor)
        # Force the executor to notice the death.
        try:
            pool.submit(_square, 2).result(timeout=60)
        except Exception:
            pass
        if not pool.broken:  # pragma: no cover - platform dependent
            pytest.skip("executor did not mark itself broken")
        replacement = workerpool.acquire(1)
        assert replacement is not pool
        assert replacement.generation > pool.generation
        assert replacement.submit(_square, 3).result(timeout=60) == 9


class TestStats:
    def test_counters_track_lifecycle(self):
        before = workerpool.pool_stats()
        pool = workerpool.acquire(1)
        workerpool.acquire(1)
        workerpool.retire(pool)
        after = workerpool.pool_stats()
        assert after["created"] == before["created"] + 1
        assert after["reused"] == before["reused"] + 1
        assert after["retired"] == before["retired"] + 1


class TestIdempotentRetire:
    """Satellite: retire(kill=True) against already-dead or
    already-retired workers is a counted-once no-op."""

    def test_double_retire_counts_once(self):
        pool = workerpool.acquire(1)
        before = workerpool.pool_stats()["retired"]
        workerpool.retire(pool, kill=True)
        workerpool.retire(pool, kill=True)
        workerpool.retire(pool)
        assert workerpool.pool_stats()["retired"] == before + 1
        assert workerpool.active_pools() == {}

    def test_retire_after_external_worker_death(self):
        """A chaos fault (or the OS) killed the workers first; the
        atexit/supervisor retire must still be a clean no-op path."""
        pool = workerpool.acquire(1)
        pool.submit(os.getpid).result(timeout=60)
        workerpool.kill_workers(pool.executor)
        workerpool.retire(pool, kill=True)   # kill of dead processes
        workerpool.retire(pool, kill=True)   # and again, post-retire
        assert pool.retired
        assert workerpool.active_pools() == {}
        fresh = workerpool.acquire(1)
        assert fresh is not pool
        assert fresh.submit(_square, 4).result(timeout=60) == 16

    def test_retired_flag_survives_registry_replacement(self):
        first = workerpool.acquire(1)
        workerpool.retire(first)
        second = workerpool.acquire(1)
        before = workerpool.pool_stats()["retired"]
        workerpool.retire(first, kill=True)  # stale + already retired
        assert workerpool.pool_stats()["retired"] == before
        assert workerpool.active_pools() == {1: second}
