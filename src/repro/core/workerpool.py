"""Persistent warm worker pools for sweep execution.

Historically every ``run_sweep(jobs=N)`` built a fresh
:class:`~concurrent.futures.ProcessPoolExecutor`, paid worker spawn plus a
full ``import repro`` in every worker, and tore the pool down at the end —
which is why ``BENCH_runner_scaling.json`` showed ``jobs=2/4`` *slower*
than serial on this repo's grids of cheap points.  This module keeps one
executor per worker count alive for the whole process:

* pools are created with the cheapest start method the platform offers
  (``fork`` where available, so workers inherit the parent's
  already-imported ``repro``; ``forkserver``, then ``spawn`` otherwise —
  override with ``$REPRO_POOL_START_METHOD``);
* every worker runs :func:`_warm_import` once at startup, so even
  spawn-start workers import the heavy modules exactly once, not once
  per sweep;
* :func:`acquire` hands back the warm pool for a worker count, creating
  it only on first use (or after the previous one was retired);
* :func:`retire` removes a pool from the registry — with ``kill=True``
  its worker processes are terminated, which is how the supervised
  runner reaps stalled workers and how fail-fast sweeps actually stop
  instead of letting running attempts finish unobserved.

The registry is process-global on purpose: back-to-back sweeps (every
figure regeneration runs several) reuse the same warm workers, and an
``atexit`` hook shuts everything down when the process ends.
"""

from __future__ import annotations

import atexit
import importlib
import logging
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional

log = logging.getLogger(__name__)

#: Environment override for the pool start method.
START_METHOD_ENV = "REPRO_POOL_START_METHOD"

#: Start methods in preference order: ``fork`` is the cheapest warm start
#: (workers share the parent's imported modules via copy-on-write);
#: ``forkserver`` forks warm workers from a clean preloaded server; plain
#: ``spawn`` is the portable fallback.
PREFERRED_START_METHODS = ("fork", "forkserver", "spawn")

#: Modules imported by every worker at startup.  Covers the transitive
#: bulk of an experiment run, so the first task dispatched to a fresh
#: worker pays no import latency.
WARM_MODULES = (
    "repro.core.experiment",
    "repro.core.dispatch",
    "repro.engine.engine",
    "repro.backends",
    "repro.workloads",
)


def _warm_import() -> None:
    """Worker initializer: front-load every heavy import exactly once."""
    for name in WARM_MODULES:
        importlib.import_module(name)


def start_method() -> str:
    """The multiprocessing start method warm pools use on this platform."""
    available = multiprocessing.get_all_start_methods()
    override = os.environ.get(START_METHOD_ENV)
    if override:
        if override in available:
            return override
        log.warning(
            "%s=%r is not available on this platform (have %s); ignoring",
            START_METHOD_ENV, override, available,
        )
    for method in PREFERRED_START_METHODS:
        if method in available:
            return method
    return multiprocessing.get_start_method()  # pragma: no cover


@dataclass
class WarmPool:
    """One persistent executor plus its bookkeeping."""

    executor: ProcessPoolExecutor
    workers: int
    method: str
    #: Monotonic id distinguishing successive pools at one worker count
    #: (a recycled pool is a *new* generation, which tests assert on).
    generation: int
    tasks_dispatched: int = field(default=0)
    #: Set by :func:`retire`; makes retirement idempotent (a pool can be
    #: retired both by a failing sweep and by the atexit sweep, or twice
    #: when chaos kills its workers while a retire is in flight).
    retired: bool = field(default=False)

    @property
    def broken(self) -> bool:
        """True once a worker died and the executor can't be reused."""
        return bool(getattr(self.executor, "_broken", False))

    def submit(self, fn, /, *args, **kwargs):
        self.tasks_dispatched += 1
        return self.executor.submit(fn, *args, **kwargs)


_pools: Dict[int, WarmPool] = {}
_generation = 0
_stats = {"created": 0, "reused": 0, "retired": 0}


def acquire(workers: int) -> WarmPool:
    """The warm pool for *workers* processes, created on first use.

    A pool that broke (worker death) since it was last seen is silently
    replaced — callers always get an executor that accepts submissions.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    global _generation
    pool = _pools.get(workers)
    if pool is not None and not pool.broken:
        _stats["reused"] += 1
        return pool
    if pool is not None:  # broken but never retired; clean it up
        retire(pool, kill=True)
    method = start_method()
    context = multiprocessing.get_context(method)
    executor = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_warm_import,
    )
    _generation += 1
    _stats["created"] += 1
    pool = WarmPool(executor=executor, workers=workers, method=method,
                    generation=_generation)
    _pools[workers] = pool
    return pool


def retire(pool: WarmPool, kill: bool = False) -> None:
    """Remove *pool* from the registry and shut its executor down.

    ``kill=True`` terminates the worker processes first — the only way to
    stop attempts that are already running (a busy worker cannot be
    interrupted portably).  Pending futures are cancelled either way, so
    a fail-fast sweep stops instead of draining its queue.

    Idempotent: retiring a pool that is already retired — or whose
    workers a chaos fault already killed — is a no-op, not an exception,
    and is counted once.  The registry entry is removed *before* any
    process teardown so a teardown failure can never leave a dead pool
    discoverable.
    """
    current = _pools.get(pool.workers)
    if current is pool:
        del _pools[pool.workers]
    if pool.retired:
        return
    pool.retired = True
    _stats["retired"] += 1
    if kill:
        kill_workers(pool.executor)
    try:
        pool.executor.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - cancel_futures is 3.9+
        pool.executor.shutdown(wait=False)
    except Exception:  # pragma: no cover - already-dead executor state
        # A pool whose workers were externally killed can surface broken
        # internals from shutdown(); the pool is gone either way.
        pass


def kill_workers(executor: ProcessPoolExecutor) -> None:
    """Terminate an executor's worker processes (best effort).

    ``_processes`` is executor-internal; guard every access so a stdlib
    layout change degrades to an orderly shutdown instead of an
    attribute error.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - best effort
            pass


def active_pools() -> Dict[int, WarmPool]:
    """Snapshot of live pools keyed by worker count (for tests/stats)."""
    return dict(_pools)


def pool_stats() -> Dict[str, int]:
    """Lifetime counters: pools created, reuse hits, retirements."""
    return dict(_stats)


def shutdown_all() -> None:
    """Retire every live pool (registered atexit; safe to call any time)."""
    for pool in list(_pools.values()):
        retire(pool)


atexit.register(shutdown_all)
