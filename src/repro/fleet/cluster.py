"""Sharded, multi-tenant fleet traffic simulation with SLO accounting.

The paper characterizes how *one* engine degrades as resources shrink;
this module asks the consolidated-fleet version of the question — how
gracefully a sharded cluster of engines degrades as offered load rises
past capacity.  The pieces:

* **Shards.**  :class:`FleetCluster` composes N engine instances (the
  backend personalities of :mod:`repro.backends`, cycled across shards,
  optionally wrapped in PR 8 :class:`~repro.fleet.replicas.ReplicaGroup`
  replication) on one shared simulator clock, exactly the way chaos
  fleets are built.
* **Tenants.**  Open-loop arrivals (:mod:`repro.workloads.arrivals`
  traces: diurnal / MMPP burst / flash-crowd) are attributed to weighted
  :class:`TenantSpec` tenants with priorities and p99 SLOs.
* **Governance.**  A per-tenant token bucket (lazy sim-clock refill, the
  :class:`~repro.fleet.hedging.RetryBudget` construction) caps governed
  tenants at their purchased rate *before* the engines see the traffic —
  layered on top of the per-engine RESOURCE_SEMAPHORE, which keeps
  doing per-query memory admission underneath.
* **Priority shedding.**  Each shard admits at most
  ``capacity_per_shard`` concurrent transactions, but the admission
  watermark *decreases with tenant priority number*: the most protected
  class (priority 0) may fill the shard, lower classes are refused
  progressively earlier.  That ordering is the mechanism behind the
  monotone-graceful-degradation contract — as load rises, sheds
  concentrate on low-priority traffic while the protected class's p99
  stays inside its SLO.
* **Autoscaling.**  An optional deterministic
  :class:`~repro.fleet.autoscale.Autoscaler` grows/shrinks the ready
  shard set on queue-depth + grant-wait signals, paying the serverless
  cold-start cost for each scale-out.

Outputs are tail-first: :class:`FleetReport` carries p50/p99/p999 per
tenant and fleet-wide, the scaling timeline, and a canonical payload
(sha256-digestable for determinism checks and journal resume).  The
``dm_fleet_slo`` DMV (:mod:`repro.engine.statistics`) renders the same
data as a management view.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import DEFAULT_ROUTER_BACKENDS, make_backend
from repro.core.knobs import ResourceAllocation
from repro.errors import ConfigurationError, FaultInjectionError
from repro.fleet.autoscale import Autoscaler, AutoscalePolicy
from repro.fleet.health import FailoverController, HeartbeatMonitor
from repro.fleet.replicas import Replica, ReplicaGroup
from repro.hardware.machine import Machine, MachineSpec
from repro.sim.process import Simulator, Timeout
from repro.sim.randomness import RandomStreams
from repro.sim.stats import Cdf
from repro.workloads import make_workload
from repro.workloads.arrivals import ArrivalSpec

#: Priority-shedding watermarks: the admission fraction of shard
#: capacity available to priority *p* is ``max(FLOOR, 1 - STEP * p)``.
#: Priority 0 may fill the shard; every next class is refused earlier —
#: which is what makes shed ordering (low priority strictly first)
#: structural rather than statistical.
PRIORITY_WATERMARK_STEP = 0.25
PRIORITY_WATERMARK_FLOOR = 0.25

#: Tolerance on the monotone-goodput invariant: a tenant's completed
#: fraction may wiggle up by at most this (absolute) between adjacent
#: oversubscription levels before the invariant is called violated.
MONOTONE_TOLERANCE = 0.02


def priority_watermark(priority: int, capacity: int) -> int:
    """Concurrent-transaction bound for one priority class on one shard."""
    fraction = max(PRIORITY_WATERMARK_FLOOR,
                   1.0 - PRIORITY_WATERMARK_STEP * priority)
    return max(1, int(math.ceil(capacity * fraction)))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the fleet: traffic share, protection, governance."""

    name: str
    priority: int = 1               #: 0 = most protected, sheds last
    weight: float = 1.0             #: share of the offered arrival stream
    slo_p99_ms: float = 250.0       #: the p99 bound the fleet must defend
    #: Token-bucket refill rate (tps); 0 = ungoverned.  Governance caps a
    #: tenant at its purchased rate before the engines see the traffic.
    rate_limit_tps: float = 0.0
    burst_allowance: float = 0.0    #: bucket capacity (default 2x rate)

    def __post_init__(self):
        if self.weight <= 0:
            raise ConfigurationError(f"tenant {self.name}: bad weight")
        if self.priority < 0:
            raise ConfigurationError(f"tenant {self.name}: bad priority")
        if self.slo_p99_ms <= 0:
            raise ConfigurationError(f"tenant {self.name}: bad SLO")
        if self.rate_limit_tps < 0 or self.burst_allowance < 0:
            raise ConfigurationError(f"tenant {self.name}: bad governance")


def default_tenants(count: int, slo_p99_ms: float = 250.0,
                    ) -> Tuple[TenantSpec, ...]:
    """A mixed-priority tenant population: priorities cycle 0/1/2 so any
    population has protected, standard, and best-effort classes."""
    if count < 1:
        raise ConfigurationError("need at least one tenant")
    return tuple(
        TenantSpec(name=f"tenant{i}", priority=i % 3,
                   weight=1.0, slo_p99_ms=slo_p99_ms)
        for i in range(count)
    )


@dataclass(frozen=True)
class FleetSpec:
    """Everything a fleet-traffic run needs; hashable and
    cache/digest-canonical like :class:`ChaosConfig`."""

    shards: int = 2
    backends: Tuple[str, ...] = DEFAULT_ROUTER_BACKENDS
    workload: str = "asdb"
    scale_factor: int = 10
    duration: float = 8.0
    seed: int = 0
    arrival: ArrivalSpec = ArrivalSpec(offered_tps=300.0)
    tenants: Tuple[TenantSpec, ...] = default_tenants(4)
    capacity_per_shard: int = 32    #: concurrent-txn admission bound
    replication: int = 1            #: replicas per shard (1 = unreplicated)
    autoscale: Optional[AutoscalePolicy] = None

    def __post_init__(self):
        if self.shards < 1:
            raise ConfigurationError("a fleet needs at least one shard")
        if not self.backends:
            raise ConfigurationError("need at least one backend personality")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.capacity_per_shard < 1:
            raise ConfigurationError("capacity must be >= 1")
        if self.replication < 1:
            raise ConfigurationError("replication must be >= 1")
        if not self.tenants:
            raise ConfigurationError("need at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError("tenant names must be unique")


class _TokenBucket:
    """Per-tenant governance bucket: lazy sim-clock refill (the
    :class:`~repro.fleet.hedging.RetryBudget` construction, one bucket
    per governed tenant so rates differ)."""

    def __init__(self, sim: Simulator, rate_tps: float, capacity: float):
        self._sim = sim
        self.rate = rate_tps
        self.capacity = capacity
        self._tokens = capacity
        self._at = sim.now
        self.denied = 0

    def try_spend(self) -> bool:
        now = self._sim.now
        self._tokens = min(self.capacity,
                           self._tokens + (now - self._at) * self.rate)
        self._at = now
        if self._tokens < 1.0:
            self.denied += 1
            return False
        self._tokens -= 1.0
        return True


class _Shard:
    """One shard: an engine (or replica group) plus admission state."""

    def __init__(self, index: int, machines: List[Machine],
                 engines: List, backend: str,
                 group: Optional[ReplicaGroup],
                 monitor: Optional[HeartbeatMonitor],
                 ready_at: float):
        self.index = index
        self.machines = machines
        self._engines = engines
        self.backend = backend
        self.group = group
        self.monitor = monitor
        self.active = True          #: routed to (False once scaled in)
        self.down = False           #: chaos-crashed (unreplicated shards)
        self.ready_at = ready_at    #: cold start: takes traffic after this
        self.in_flight = 0
        self.in_flight_peak = 0
        self.completed = 0

    @property
    def engine(self):
        """The serving engine — the replica group's current primary when
        replicated (None mid-failover), the single engine otherwise."""
        if self.group is not None:
            primary = self.group.primary
            return primary.engine if primary is not None else None
        return self._engines[0]

    @property
    def machine(self) -> Machine:
        if self.group is not None and self.group.primary is not None:
            return self.group.primary.machine
        return self.machines[0]

    def ready(self, now: float) -> bool:
        return (self.active and not self.down and now >= self.ready_at
                and self.engine is not None)

    def grant_wait_seconds(self) -> float:
        engine = self.engine
        if engine is None:
            return 0.0
        return engine.semaphore.summary()["grant_wait_seconds"]


@dataclass(frozen=True)
class TenantStats:
    """One tenant's fleet-SLO outcome (primitives only, so reports
    reconstruct losslessly from journal payloads)."""

    name: str
    priority: int
    arrivals: int
    completed: int
    shed: int
    governed: int
    goodput_tps: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    slo_p99_ms: float
    first_shed_at: Optional[float]

    @property
    def goodput_fraction(self) -> float:
        if self.arrivals == 0:
            return 1.0
        return self.completed / self.arrivals

    @property
    def shed_fraction(self) -> float:
        if self.arrivals == 0:
            return 0.0
        return self.shed / self.arrivals

    @property
    def slo_ok(self) -> bool:
        """SLO attainment: NaN p99 (a tenant with traffic but no
        completions) counts as a violation, not a pass."""
        if self.arrivals == 0:
            return True
        if math.isnan(self.p99_ms):
            return False
        return self.p99_ms <= self.slo_p99_ms

    def payload(self) -> Dict[str, object]:
        return {
            "name": self.name, "priority": self.priority,
            "arrivals": self.arrivals, "completed": self.completed,
            "shed": self.shed, "governed": self.governed,
            "goodput_tps": self.goodput_tps,
            "p50_ms": self.p50_ms, "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms, "slo_p99_ms": self.slo_p99_ms,
            "first_shed_at": self.first_shed_at,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "TenantStats":
        return cls(**{k: payload[k] for k in (
            "name", "priority", "arrivals", "completed", "shed", "governed",
            "goodput_tps", "p50_ms", "p99_ms", "p999_ms", "slo_p99_ms",
            "first_shed_at",
        )})


@dataclass
class FleetReport:
    """Tail-first outcome of one fleet-traffic run."""

    shards_initial: int
    shards_peak: int
    shards_final: int
    offered_tps: float
    trace: str
    duration: float
    seed: int
    arrivals: int
    completed: int
    shed: int
    governed: int
    p50_ms: float
    p99_ms: float
    p999_ms: float
    tenants: Dict[str, TenantStats]
    per_shard: List[Dict[str, object]]
    scaling: Dict[str, object]
    reaction_seconds: Optional[float]
    episodes: List[Dict[str, object]] = field(default_factory=list)
    #: Per priority class, the first instant an arrival of that class
    #: was (or, by watermark nesting, would have been) refused.
    first_refusal_by_priority: Dict[int, float] = field(default_factory=dict)

    @property
    def completed_tps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def protected_violations(self) -> List[str]:
        """Tenants of the most-protected class whose p99 broke SLO."""
        top = min((t.priority for t in self.tenants.values()), default=0)
        return sorted(
            name for name, t in self.tenants.items()
            if t.priority == top and not t.slo_ok
        )

    def slo_ok(self) -> bool:
        return not self.protected_violations()

    def to_payload(self) -> Dict[str, object]:
        """Canonical primitive view (journal lines, digests)."""
        return {
            "shards_initial": self.shards_initial,
            "shards_peak": self.shards_peak,
            "shards_final": self.shards_final,
            "offered_tps": self.offered_tps,
            "trace": self.trace,
            "duration": self.duration,
            "seed": self.seed,
            "arrivals": self.arrivals,
            "completed": self.completed,
            "shed": self.shed,
            "governed": self.governed,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "tenants": {name: stats.payload()
                        for name, stats in sorted(self.tenants.items())},
            "per_shard": self.per_shard,
            "scaling": self.scaling,
            "reaction_seconds": self.reaction_seconds,
            "episodes": self.episodes,
            "first_refusal_by_priority": {
                str(priority): at
                for priority, at in sorted(self.first_refusal_by_priority.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "FleetReport":
        tenants = {name: TenantStats.from_payload(stats)
                   for name, stats in payload["tenants"].items()}
        return cls(
            shards_initial=payload["shards_initial"],
            shards_peak=payload["shards_peak"],
            shards_final=payload["shards_final"],
            offered_tps=payload["offered_tps"],
            trace=payload["trace"],
            duration=payload["duration"],
            seed=payload["seed"],
            arrivals=payload["arrivals"],
            completed=payload["completed"],
            shed=payload["shed"],
            governed=payload["governed"],
            p50_ms=payload["p50_ms"],
            p99_ms=payload["p99_ms"],
            p999_ms=payload["p999_ms"],
            tenants=tenants,
            per_shard=list(payload["per_shard"]),
            scaling=dict(payload["scaling"]),
            reaction_seconds=payload["reaction_seconds"],
            episodes=list(payload.get("episodes", [])),
            first_refusal_by_priority={
                int(priority): at
                for priority, at in payload.get(
                    "first_refusal_by_priority", {}).items()
            },
        )

    def digest(self) -> str:
        """Bit-exact fingerprint of everything a client observed —
        sha256 over the canonical payload, the chaos-style determinism
        handle."""
        from repro.core.resultcache import canonical_json

        return hashlib.sha256(
            canonical_json(self.to_payload()).encode()
        ).hexdigest()


class FleetCluster:
    """The live cluster: shards, tenants, governance, shedding."""

    def __init__(self, spec: FleetSpec):
        self.spec = spec
        self.sim = Simulator()
        self.streams = RandomStreams(spec.seed).fork("fleet")
        self.workload = make_workload(spec.workload, spec.scale_factor)
        if not hasattr(self.workload, "transaction_types"):
            raise ConfigurationError(
                "fleet traffic needs a transactional workload; "
                f"{spec.workload!r} has no demand generator"
            )
        self.allocation = ResourceAllocation()
        self.capacity_per_shard = spec.capacity_per_shard
        self.shards: List[_Shard] = []
        self._built = 0
        for _ in range(spec.shards):
            self._build_shard(ready_at=0.0)
        # -- tenant state --------------------------------------------------------
        weights = np.array([t.weight for t in spec.tenants], dtype=float)
        self._tenant_weights = weights / weights.sum()
        self._buckets: Dict[str, _TokenBucket] = {}
        for tenant in spec.tenants:
            if tenant.rate_limit_tps > 0:
                capacity = tenant.burst_allowance or 2.0 * tenant.rate_limit_tps
                self._buckets[tenant.name] = _TokenBucket(
                    self.sim, tenant.rate_limit_tps, capacity)
        self.arrivals = 0
        self.completed = 0
        self.latencies = Cdf()
        self.tenant_arrivals: Dict[str, int] = {t.name: 0 for t in spec.tenants}
        self.tenant_completed: Dict[str, int] = {t.name: 0 for t in spec.tenants}
        self.tenant_sheds: Dict[str, int] = {t.name: 0 for t in spec.tenants}
        self.tenant_governed: Dict[str, int] = {t.name: 0 for t in spec.tenants}
        self.tenant_latencies: Dict[str, Cdf] = {t.name: Cdf()
                                                 for t in spec.tenants}
        self.first_shed_at: Dict[str, float] = {}
        self._priorities = sorted({t.priority for t in spec.tenants})
        #: Per priority class: first instant an arrival of that class was
        #: (or would have been) refused.  Watermarks nest — a shard full
        #: for priority p is full for every q > p — so when priority p
        #: sheds, every less-protected class is marked refused at the
        #: same instant.  This clock is structurally ordered by priority,
        #: unlike per-tenant first sheds, which sample arrival times.
        self.first_refusal_at: Dict[int, float] = {}
        self.shards_peak = spec.shards
        self.autoscaler: Optional[Autoscaler] = None
        if spec.autoscale is not None:
            self.autoscaler = Autoscaler(self, spec.autoscale)
        self.episode_log: List[Dict[str, object]] = []

    # -- fleet membership --------------------------------------------------------

    def _build_shard(self, ready_at: float) -> _Shard:
        spec = self.spec
        index = self._built
        self._built += 1
        backend_name = spec.backends[index % len(spec.backends)]
        backend = make_backend(backend_name)
        machines, engines = [], []
        for r in range(spec.replication):
            machine = Machine(
                spec=MachineSpec(),
                seed=self.streams.fork(f"shard{index}.replica{r}").seed,
                shared_sim=self.sim,
            )
            self.allocation.apply_to(machine)
            machines.append(machine)
            engines.append(backend.build_engine(machine, self.workload,
                                                self.allocation))
        group = monitor = None
        if spec.replication > 1:
            group = ReplicaGroup(self.sim, [
                Replica(index=r, machine=machines[r], engine=engines[r])
                for r in range(spec.replication)
            ])
            monitor = HeartbeatMonitor(group)
            controller = FailoverController(group, monitor)
            monitor.install()
            controller.install()
        shard = _Shard(index, machines, engines, backend_name, group,
                       monitor, ready_at)
        self.shards.append(shard)
        return shard

    def ready_shards(self) -> List[_Shard]:
        now = self.sim.now
        return [s for s in self.shards if s.ready(now)]

    def active_count(self) -> int:
        return sum(1 for s in self.shards if s.active and not s.down)

    def scale_out(self, ready_at: float) -> _Shard:
        """Provision one more shard; it takes traffic once the cold
        start completes (``ready_at``)."""
        for shard in self.shards:
            if not shard.active and not shard.down:
                # Reuse a drained scaled-in shard: warm capacity.
                shard.active = True
                shard.ready_at = ready_at
                self.shards_peak = max(self.shards_peak, self.active_count())
                return shard
        shard = self._build_shard(ready_at=ready_at)
        self.shards_peak = max(self.shards_peak, self.active_count())
        return shard

    def scale_in(self) -> Optional[_Shard]:
        """Deactivate the highest-index active shard; its in-flight work
        drains naturally (no new arrivals route to it)."""
        for shard in reversed(self.shards):
            if shard.active and not shard.down:
                shard.active = False
                return shard
        return None

    def total_grant_wait_seconds(self) -> float:
        return sum(s.grant_wait_seconds() for s in self.shards)

    def total_sheds(self) -> int:
        return sum(self.tenant_sheds.values())

    # -- admission ---------------------------------------------------------------

    def _place(self, priority: int) -> Optional[_Shard]:
        """Least-loaded ready shard that still admits this priority
        class (deterministic: ties break to the lowest index)."""
        best = None
        for shard in self.ready_shards():
            if shard.in_flight >= priority_watermark(priority,
                                                     self.capacity_per_shard):
                continue
            if best is None or shard.in_flight < best.in_flight:
                best = shard
        return best

    # -- traffic -----------------------------------------------------------------

    def _arrivals_proc(self, until: float) -> Generator:
        spec = self.spec
        rng = self.streams.get("arrivals")
        trace_rng = self.streams.get("arrivals.trace")
        trace = spec.arrival.build_trace(until, trace_rng)
        offered = spec.arrival.offered_tps
        deterministic = spec.arrival.trace == "deterministic"
        peak = trace.peak_rate() if trace is not None else offered
        types = self.workload.transaction_types()
        type_weights = np.array([t.weight for t in types], dtype=float)
        type_weights /= type_weights.sum()
        tenants = spec.tenants
        while self.sim.now < until:
            gap = (1.0 / offered if deterministic
                   else float(rng.exponential(1.0 / peak)))
            yield Timeout(gap)
            if self.sim.now >= until:
                break
            if trace is not None:
                if float(rng.uniform()) * peak > trace.rate_at(self.sim.now):
                    continue
            tenant = tenants[int(rng.choice(len(tenants),
                                            p=self._tenant_weights))]
            self.arrivals += 1
            self.tenant_arrivals[tenant.name] += 1
            bucket = self._buckets.get(tenant.name)
            if bucket is not None and not bucket.try_spend():
                self.tenant_governed[tenant.name] += 1
                continue
            shard = self._place(tenant.priority)
            if shard is None:
                self._shed(tenant)
                continue
            txn_type = types[int(rng.choice(len(types), p=type_weights))]
            demand = self.workload.build_demand(shard.engine, txn_type, rng)
            shard.in_flight += 1
            shard.in_flight_peak = max(shard.in_flight_peak, shard.in_flight)
            self.sim.spawn(self._execute(shard, tenant, demand),
                           name=f"fleet-txn-{shard.index}")
        return None

    def _shed(self, tenant: TenantSpec) -> None:
        self.tenant_sheds[tenant.name] += 1
        self.first_shed_at.setdefault(tenant.name, self.sim.now)
        for priority in self._priorities:
            if priority >= tenant.priority:
                self.first_refusal_at.setdefault(priority, self.sim.now)

    def _execute(self, shard: _Shard, tenant: TenantSpec, demand) -> Generator:
        engine = shard.engine
        if engine is None:
            # The shard lost its primary between placement and dispatch
            # (chaos): the request is shed, not silently dropped.
            shard.in_flight -= 1
            self._shed(tenant)
            return None
        start = self.sim.now
        try:
            result = yield from engine.run_transaction(demand)
        except FaultInjectionError:
            shard.in_flight -= 1
            self._shed(tenant)
            return None
        shard.in_flight -= 1
        shard.completed += 1
        self.completed += 1
        self.tenant_completed[tenant.name] += 1
        elapsed = self.sim.now - start if result is None else result.elapsed
        self.latencies.add(elapsed)
        self.tenant_latencies[tenant.name].add(elapsed)
        return None

    # -- chaos composability -----------------------------------------------------

    def _drive_episode(self, episode) -> Generator:
        """Run one chaos episode against the fleet (duck-typed over
        :class:`~repro.faults.chaos.ChaosEpisode`, so the chaos
        scheduler's output composes without an import cycle)."""
        yield Timeout(episode.at)
        shard = self.shards[episode.replica % len(self.shards)]
        entry: Dict[str, object] = {
            "kind": episode.kind, "shard": shard.index,
            "at": self.sim.now, "duration": episode.duration,
        }
        if episode.kind == "brownout":
            spec = episode.spec
            shard.machine.ssd.apply_brownout(
                read_factor=spec.read_factor,
                write_factor=spec.write_factor,
                latency_factor=spec.latency_factor,
            )
            yield Timeout(episode.duration)
            shard.machine.ssd.clear_brownout()
        elif episode.kind in ("crash", "partition"):
            if shard.group is not None:
                primary = shard.group.primary
                if primary is not None and primary.up:
                    shard.group.note_primary_down()
                    if episode.kind == "crash":
                        primary.crash()
                        yield Timeout(episode.duration)
                        primary.restart()
                    else:
                        primary.partitioned = True
                        yield Timeout(episode.duration)
                        primary.fence()
                        primary.partitioned = False
                    yield from shard.group.rejoin(primary)
            else:
                # Unreplicated shard: the outage takes the whole shard
                # out of rotation — the autoscaler's problem now.
                shard.down = True
                yield Timeout(episode.duration)
                shard.down = False
        elif episode.kind == "storm":
            spec = episode.spec
            engine = shard.engine
            if engine is not None:
                for q in range(spec.queries):
                    self.sim.spawn(
                        self._storm_query(engine.semaphore, spec),
                        name=f"fleet-storm-{shard.index}-{q}",
                    )
            yield Timeout(episode.duration)
        entry["healed_at"] = self.sim.now
        self.episode_log.append(entry)

    def _storm_query(self, semaphore, spec) -> Generator:
        from repro.errors import GrantTimeoutError

        nbytes = semaphore.pool_bytes * spec.pool_fraction
        try:
            ticket = yield from semaphore.acquire(nbytes, name="fleet-storm")
        except GrantTimeoutError:
            return None
        try:
            yield Timeout(spec.hold_seconds)
        finally:
            semaphore.release(ticket)
        return None

    # -- execution ---------------------------------------------------------------

    def run(self, schedule: Sequence = ()) -> FleetReport:
        spec = self.spec
        if self.autoscaler is not None:
            self.autoscaler.install()
        for i, episode in enumerate(schedule):
            self.sim.spawn(self._drive_episode(episode),
                           name=f"fleet-episode-{i}")
        self.sim.spawn(self._arrivals_proc(spec.duration), name="fleet-arrivals")
        self.sim.run(until=spec.duration)
        return self._report()

    # -- reporting ---------------------------------------------------------------

    def _percentile(self, cdf: Cdf, p: float) -> float:
        if len(cdf) == 0:
            return float("nan")
        return cdf.percentile(p) * 1000.0

    def _report(self) -> FleetReport:
        spec = self.spec
        tenants: Dict[str, TenantStats] = {}
        for tenant in spec.tenants:
            cdf = self.tenant_latencies[tenant.name]
            completed = self.tenant_completed[tenant.name]
            tenants[tenant.name] = TenantStats(
                name=tenant.name,
                priority=tenant.priority,
                arrivals=self.tenant_arrivals[tenant.name],
                completed=completed,
                shed=self.tenant_sheds[tenant.name],
                governed=self.tenant_governed[tenant.name],
                goodput_tps=completed / spec.duration,
                p50_ms=self._percentile(cdf, 50.0),
                p99_ms=self._percentile(cdf, 99.0),
                p999_ms=self._percentile(cdf, 99.9),
                slo_p99_ms=tenant.slo_p99_ms,
                first_shed_at=self.first_shed_at.get(tenant.name),
            )
        per_shard = [
            {
                "shard": s.index, "backend": s.backend,
                "completed": s.completed, "in_flight_peak": s.in_flight_peak,
                "active": s.active, "replicas": spec.replication,
            }
            for s in self.shards
        ]
        scaling = (self.autoscaler.summary()
                   if self.autoscaler is not None
                   else {"decisions": [], "scale_outs": 0, "scale_ins": 0,
                         "overload_onset": None})
        reaction = (self.autoscaler.reaction_seconds()
                    if self.autoscaler is not None else None)
        return FleetReport(
            shards_initial=spec.shards,
            shards_peak=self.shards_peak,
            shards_final=self.active_count(),
            offered_tps=spec.arrival.offered_tps,
            trace=spec.arrival.trace,
            duration=spec.duration,
            seed=spec.seed,
            arrivals=self.arrivals,
            completed=self.completed,
            shed=sum(self.tenant_sheds.values()),
            governed=sum(self.tenant_governed.values()),
            p50_ms=self._percentile(self.latencies, 50.0),
            p99_ms=self._percentile(self.latencies, 99.0),
            p999_ms=self._percentile(self.latencies, 99.9),
            tenants=tenants,
            per_shard=per_shard,
            scaling=scaling,
            reaction_seconds=reaction,
            episodes=list(self.episode_log),
            first_refusal_by_priority=dict(self.first_refusal_at),
        )


def run_fleet(spec: FleetSpec, schedule: Sequence = ()) -> FleetReport:
    """One fleet-traffic run: build the cluster, drive the trace (and
    any chaos episodes), return the tail-first report."""
    return FleetCluster(spec).run(schedule=schedule)


# ---------------------------------------------------------------------------
# Oversubscription sweeps and invariants
# ---------------------------------------------------------------------------

def spec_digest(spec: FleetSpec, schedule: Sequence = ()) -> str:
    """Canonical digest of one fleet point (journal resume key).  The
    chaos schedule is folded in so faulted and fault-free runs of the
    same spec never collide."""
    from repro.core.resultcache import canonical_json

    return hashlib.sha256(canonical_json(
        {"spec": spec, "schedule": list(schedule)}
    ).encode()).hexdigest()


@dataclass
class FleetSweep:
    """Reports across rising oversubscription, plus the SLO contracts."""

    oversubscription: List[float]
    reports: List[FleetReport]
    resumed: int = 0

    def slo_invariant(self) -> bool:
        """The graceful-degradation contract's first half: at every
        offered-load level, every most-protected tenant's p99 stays
        inside its SLO."""
        return all(report.slo_ok() for report in self.reports)

    def slo_violations(self) -> List[str]:
        out = []
        for oversub, report in zip(self.oversubscription, self.reports):
            for name in report.protected_violations():
                stats = report.tenants[name]
                out.append(f"{oversub:g}x {name}: p99 {stats.p99_ms:.1f}ms "
                           f"> slo {stats.slo_p99_ms:.0f}ms")
        return out

    def monotone_degradation(self) -> bool:
        """The contract's second half: each tenant's goodput *fraction*
        (completed/offered) never recovers as load rises — capacity lost
        to oversubscription is surrendered in priority order, not
        reshuffled."""
        for name in self.reports[0].tenants if self.reports else ():
            previous = None
            for report in self.reports:
                fraction = report.tenants[name].goodput_fraction
                if previous is not None and fraction > previous + MONOTONE_TOLERANCE:
                    return False
                previous = fraction
        return True

    def shed_fairness(self) -> bool:
        """Sheds concentrate on low-priority traffic: at every level, a
        more-protected class never sheds a larger fraction than a
        less-protected one, and a protected class is never refused
        before a less-protected class was (the refusal clock — the
        instant a class's watermark was first hit fleet-wide — which is
        structurally ordered by watermark nesting, unlike per-tenant
        first-shed times, which sample each tenant's arrival process)."""
        for report in self.reports:
            by_priority: Dict[int, List[TenantStats]] = {}
            for stats in report.tenants.values():
                by_priority.setdefault(stats.priority, []).append(stats)
            priorities = sorted(by_priority)
            refusals = report.first_refusal_by_priority
            for higher, lower in zip(priorities, priorities[1:]):
                shed_hi = _class_shed_fraction(by_priority[higher])
                shed_lo = _class_shed_fraction(by_priority[lower])
                if shed_hi > shed_lo + 1e-9:
                    return False
                first_hi = refusals.get(higher)
                first_lo = refusals.get(lower)
                if first_hi is not None and (first_lo is None
                                             or first_lo > first_hi):
                    return False
        return True


def _class_shed_fraction(stats: List[TenantStats]) -> float:
    arrivals = sum(s.arrivals for s in stats)
    if arrivals == 0:
        return 0.0
    return sum(s.shed for s in stats) / arrivals


def _run_point(item: Tuple[FleetSpec, Tuple]) -> FleetReport:
    """Top-level (picklable) worker body for parallel fleet sweeps."""
    spec, schedule = item
    return run_fleet(spec, schedule=schedule)


def fleet_oversubscription_sweep(
    spec: FleetSpec,
    oversubscription: Sequence[float] = (1.0, 4.0, 16.0),
    jobs: int = 1,
    journal=None,
    schedule: Sequence = (),
) -> FleetSweep:
    """The graceful-degradation grid: the same fleet at rising offered
    load.  Each point is deterministic, so ``jobs=N`` fan-out (via the
    supervised runner's :func:`~repro.core.runner.map_ordered`) returns
    bit-identical reports to the serial run.

    With a :class:`~repro.core.journal.SweepJournal` (or a path), every
    completed point appends a ``fleet-traffic`` event line carrying the
    spec digest and the full report payload — a re-invocation replays
    finished points from the journal and only simulates the holes.
    """
    from repro.core.journal import SweepJournal
    from repro.core.runner import map_ordered

    if journal is not None and not isinstance(journal, SweepJournal):
        journal = SweepJournal(journal)

    points = [
        replace(spec, arrival=replace(
            spec.arrival,
            offered_tps=spec.arrival.offered_tps * float(factor)))
        for factor in oversubscription
    ]
    schedule = tuple(schedule)
    digests = [spec_digest(point, schedule) for point in points]
    done: Dict[str, FleetReport] = {}
    if journal is not None:
        for event in journal.events("fleet-traffic"):
            digest = event.get("digest")
            payload = event.get("report")
            if digest in digests and isinstance(payload, dict):
                done[digest] = FleetReport.from_payload(payload)
    missing = [(i, point) for i, (point, digest)
               in enumerate(zip(points, digests)) if digest not in done]
    fresh = map_ordered(_run_point,
                        [(point, schedule) for _, point in missing],
                        jobs=jobs)
    reports: List[Optional[FleetReport]] = [
        done.get(digest) for digest in digests
    ]
    for (index, _), report in zip(missing, fresh):
        reports[index] = report
        if journal is not None:
            journal.note("fleet-traffic", digest=digests[index],
                         oversubscription=float(oversubscription[index]),
                         report=report.to_payload())
    return FleetSweep(
        oversubscription=[float(f) for f in oversubscription],
        reports=reports,  # type: ignore[arg-type]
        resumed=len(done),
    )
