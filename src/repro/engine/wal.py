"""Write-ahead log with group commit, durability tracking, and retry.

Transactional workloads "experience significant (blocking) logging
activity and data updates that contribute to their sensitivity to write
bandwidth" (§6).  The model captures exactly that: every commit appends
log records and blocks until its batch is durable on the SSD, so a cgroup
write-bandwidth cap back-pressures transaction latency and hence TPS.

Group commit batches concurrent commits into one flush, bounded by a batch
byte size and a flush interval — without it, write IOPS rather than
bandwidth would dominate and the §6 write-cap results would not reproduce.

Two robustness features support fault injection (:mod:`repro.faults`):

* every commit is assigned a monotonically increasing **LSN** and the log
  keeps the ordered list of durable records, so a crash point can freeze
  a durable image mid-batch and recovery can replay it
  (:mod:`repro.faults.recovery`);
* a flush that hits an injected
  :class:`~repro.errors.TransientIOError` retries the **whole batch**
  (group-commit re-flush) with exponential backoff — commits are only
  acknowledged after a successful flush, never a failed one.
"""

from __future__ import annotations

from typing import Generator, List, NamedTuple, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    RecoveryError,
    TransientIOError,
)
from repro.hardware.storage import NvmeDevice
from repro.sim.process import Simulator, Timeout, WaitEvent
from repro.units import KIB


class WalRecord(NamedTuple):
    """One committed unit in the log: its LSN, payload size, and an
    opaque transaction id (``-1`` when the caller did not provide one)."""

    lsn: int
    nbytes: float
    txn_id: int


class WriteAheadLog:
    """Group-commit log writer on top of an :class:`NvmeDevice`."""

    def __init__(
        self,
        sim: Simulator,
        device: NvmeDevice,
        batch_bytes: int = 64 * KIB,
        flush_interval: float = 0.001,
        retry_backoff: float = 0.002,
        max_retry_backoff: float = 0.25,
        max_flush_retries: int = 64,
    ):
        if batch_bytes <= 0 or flush_interval <= 0:
            raise ConfigurationError("bad WAL batching parameters")
        if retry_backoff <= 0 or max_retry_backoff < retry_backoff or max_flush_retries < 0:
            raise ConfigurationError("bad WAL retry parameters")
        self._sim = sim
        self._device = device
        self.batch_bytes = batch_bytes
        self.flush_interval = flush_interval
        self.retry_backoff = retry_backoff
        self.max_retry_backoff = max_retry_backoff
        self.max_flush_retries = max_flush_retries
        self._pending_bytes = 0.0
        self._waiters: List[WaitEvent] = []
        self._pending_records: List[WalRecord] = []
        self._flusher_armed = False
        self._flush_in_progress = False
        self._next_lsn = 1
        self.durable_records: List[WalRecord] = []
        self.durable_lsn = 0
        self.total_log_bytes = 0.0
        self.total_flushes = 0
        self.total_flush_retries = 0
        self.shipped_records = 0
        self.truncated_records = 0

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def in_flight_records(self) -> Tuple[WalRecord, ...]:
        """Records appended but not yet durable (lost by a crash now)."""
        return tuple(self._pending_records)

    def commit(self, log_bytes: float, txn_id: int = -1) -> Generator:
        """Generator: append *log_bytes* and suspend until durable.

        Returns the record's LSN.  The caller is only resumed after the
        record's batch has been written successfully; a crash before
        that point loses the record (the transaction never committed).
        """
        if log_bytes < 0:
            raise ConfigurationError("negative log size")
        record = WalRecord(lsn=self._next_lsn, nbytes=log_bytes, txn_id=txn_id)
        self._next_lsn += 1
        self.total_log_bytes += log_bytes
        self._pending_bytes += log_bytes
        self._pending_records.append(record)
        gate = self._sim.event()
        self._waiters.append(gate)
        if self._pending_bytes >= self.batch_bytes:
            self._start_flush()
        elif not self._flusher_armed and not self._flush_in_progress:
            self._flusher_armed = True
            self._sim.loop.schedule_after(self.flush_interval, self._on_timer)
        yield gate
        return record.lsn

    def apply_shipped(self, records: Sequence[WalRecord]) -> Generator:
        """Generator: standby redo — apply records from a primary's stream.

        A secondary replica durably applies already-sequenced records
        shipped by its primary: one device write for the batch (the
        standby's own durability point, so brownouts and transient
        errors on the standby's device slow or retry the apply exactly
        like a local flush), then the log extends and ``durable_lsn``
        advances to the primary's numbering.  Records at or below the
        current ``durable_lsn`` are skipped — re-shipping after a
        partition heals is idempotent.  Returns the count of records
        newly made durable.

        ``_next_lsn`` tracks the applied stream, so a promoted standby
        continues the primary's LSN sequence instead of reusing numbers
        that already exist on its peers.
        """
        fresh: List[WalRecord] = []
        last = self.durable_lsn
        for record in records:
            if record.lsn <= self.durable_lsn:
                continue
            if fresh and record.lsn <= last:
                raise RecoveryError(
                    f"shipped records out of order: {record.lsn} after {last}"
                )
            fresh.append(record)
            last = record.lsn
        if not fresh:
            return 0
        nbytes = sum(r.nbytes for r in fresh)
        attempt = 0
        while True:
            try:
                yield from self._device.write(nbytes)
                break
            except TransientIOError:
                if attempt >= self.max_flush_retries:
                    raise FaultInjectionError(
                        f"standby apply failed after {attempt + 1} attempts "
                        f"({nbytes:.0f} bytes)"
                    )
                self.total_flush_retries += 1
                yield Timeout(min(self.retry_backoff * (2.0 ** attempt),
                                  self.max_retry_backoff))
                attempt += 1
        applied = 0
        for record in fresh:
            # A record shipped twice concurrently (quorum retry racing a
            # catch-up) must still land exactly once.
            if record.lsn <= self.durable_lsn:
                continue
            self.durable_records.append(record)
            self.durable_lsn = record.lsn
            applied += 1
        self.shipped_records += applied
        self._next_lsn = max(self._next_lsn, self.durable_lsn + 1)
        return applied

    def truncate_to(self, lsn: int) -> int:
        """Drop durable records above *lsn*; returns how many were dropped.

        Divergence repair on rejoin: a demoted primary may hold records
        that were durable only locally (never quorum-acknowledged) while
        the new primary issued different records under the same LSNs.
        The rejoining replica truncates to the common prefix before
        catch-up re-ships the authoritative history.
        """
        kept = [r for r in self.durable_records if r.lsn <= lsn]
        dropped = len(self.durable_records) - len(kept)
        self.durable_records = kept
        self.durable_lsn = kept[-1].lsn if kept else 0
        self._next_lsn = self.durable_lsn + 1
        self.truncated_records += dropped
        return dropped

    def _on_timer(self, _event) -> None:
        self._flusher_armed = False
        if self._waiters and not self._flush_in_progress:
            self._start_flush()

    def _start_flush(self) -> None:
        if self._flush_in_progress:
            return
        batch_bytes = self._pending_bytes
        waiters, self._waiters = self._waiters, []
        records, self._pending_records = self._pending_records, []
        self._pending_bytes = 0.0
        if not waiters:
            return
        self._flush_in_progress = True
        self.total_flushes += 1
        self._sim.spawn(self._flush(batch_bytes, waiters, records), name="wal-flush")

    def _flush(
        self, nbytes: float, waiters: List[WaitEvent], records: List[WalRecord]
    ) -> Generator:
        # Bounded retry with exponential backoff: a transient device
        # error fails the *attempt*, not the batch — the whole batch is
        # re-flushed (group-commit re-flush) and waiters stay suspended
        # until an attempt succeeds, so no commit is acknowledged early.
        attempt = 0
        while True:
            try:
                yield from self._device.write(nbytes)
                break
            except TransientIOError:
                if attempt >= self.max_flush_retries:
                    raise FaultInjectionError(
                        f"WAL flush failed after {attempt + 1} attempts "
                        f"({nbytes:.0f} bytes)"
                    )
                self.total_flush_retries += 1
                yield Timeout(min(self.retry_backoff * (2.0 ** attempt),
                                  self.max_retry_backoff))
                attempt += 1
        # Durability point: records survive any crash after this line.
        self.durable_records.extend(records)
        if records:
            self.durable_lsn = records[-1].lsn
        self._flush_in_progress = False
        for gate in waiters:
            gate.trigger()
        # If commits queued up while flushing, service them immediately.
        if self._pending_bytes >= self.batch_bytes or self._waiters:
            self._start_flush()
        return None
