"""RoutedEngine: machine partitioning, the single-engine facade, merged
views, and the end-to-end routed experiment path."""

import pytest

from repro.backends import partition_allocation
from repro.core.experiment import Experiment, ExperimentConfig, run_experiment
from repro.core.knobs import ResourceAllocation
from repro.engine.statistics import dm_router_decisions
from repro.errors import ConfigurationError
from repro.hardware.counters import SSD_READ_BYTES

FLEET = ("rowstore-oltp", "columnstore-dss", "elastic-serverless")


class TestPartitioning:
    def test_even_split(self):
        subs = partition_allocation(ResourceAllocation(logical_cores=6,
                                                       llc_mb=12), 3)
        assert [s.logical_cores for s in subs] == [2, 2, 2]
        assert [s.llc_mb for s in subs] == [4, 4, 4]

    def test_remainder_goes_to_earlier_backends(self):
        subs = partition_allocation(ResourceAllocation(logical_cores=32,
                                                       llc_mb=40), 3)
        assert [s.logical_cores for s in subs] == [11, 11, 10]
        assert sum(s.llc_mb for s in subs) == 40
        assert all(s.llc_mb % 2 == 0 for s in subs)

    def test_too_few_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_allocation(ResourceAllocation(logical_cores=2,
                                                    llc_mb=40), 3)

    def test_too_little_llc_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_allocation(ResourceAllocation(logical_cores=8,
                                                    llc_mb=4), 3)

    def test_other_knobs_preserved(self):
        allocation = ResourceAllocation(grant_timeout_s=9.0)
        subs = partition_allocation(allocation, 2)
        assert all(s.grant_timeout_s == 9.0 for s in subs)


class TestRoutedExperiment:
    def test_routed_run_measures_and_counts(self):
        m = run_experiment("tpch", 10, duration=5.0, router="rule-based")
        assert m.backend == "router:rule-based"
        assert m.router_policy == "rule-based"
        assert set(m.router_decisions) == set(FLEET)
        assert sum(m.router_decisions.values()) > 0
        assert m.primary_metric > 0

    def test_router_backends_subset(self):
        m = run_experiment(
            "tpch", 10, duration=5.0, router="rule-based",
            router_backends=("rowstore-oltp", "columnstore-dss"),
        )
        assert set(m.router_decisions) == {"rowstore-oltp", "columnstore-dss"}

    def test_duplicate_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment(
                "tpch", 10, duration=2.0, router="rule-based",
                router_backends=("rowstore-oltp", "rowstore-oltp"),
            )

    def test_routed_beats_worst_single_backend(self):
        """The routed fleet's whole point: on a DSS workload it must not
        lose to the worst fixed placement."""
        routed = run_experiment("tpch", 10, duration=10.0,
                                router="rule-based")
        singles = [
            run_experiment("tpch", 10, duration=10.0, backend=name)
            for name in FLEET
        ]
        assert routed.primary_metric >= min(s.primary_metric for s in singles)

    def test_faults_incompatible_with_routing(self):
        from repro.faults import CrashPoint

        config = ExperimentConfig(
            workload="tpch", scale_factor=10, duration=2.0,
            router="rule-based", faults=(CrashPoint(at=1.0),),
        )
        with pytest.raises(ConfigurationError):
            Experiment(config).run()

    def test_oltp_transactions_pin_to_rowstore(self):
        m = run_experiment("asdb", 2000, duration=3.0, router="rule-based")
        # All ASDB work is transactions: routed through the pinned OLTP
        # backend, never the per-query router.
        assert sum(m.router_decisions.values()) == 0
        assert m.primary_metric > 0


class TestRoutedFacade:
    def build(self, policy="rule-based"):
        from repro.backends import build_routed_engine
        from repro.hardware.machine import Machine
        from repro.workloads import make_workload

        machine = Machine()
        allocation = ResourceAllocation()
        allocation.apply_to(machine)
        workload = make_workload("tpch", 10)
        engine = build_routed_engine(machine, workload, allocation, FLEET,
                                     policy)
        return machine, workload, engine

    def test_disjoint_cpusets_cover_allocation(self):
        _, _, engine = self.build()
        cpu_sets = [e.machine.cpuset.cpus for e in engine.engines.values()]
        union = frozenset().union(*cpu_sets)
        assert len(union) == sum(len(s) for s in cpu_sets) == 32

    def test_transaction_engine_is_best_point_backend(self):
        _, _, engine = self.build()
        assert engine.transaction_engine is engine.engines["rowstore-oltp"]

    def test_ssd_counters_not_multiplied(self):
        machine, workload, engine = self.build()
        from repro.workloads.base import ThroughputTracker
        tracker = ThroughputTracker()
        workload.spawn_clients(engine, tracker, until=4.0)
        machine.sim.run(until=4.0)
        totals = engine.counter_totals()
        one = next(iter(engine.engines.values())).counter_totals()
        assert totals[SSD_READ_BYTES] == one[SSD_READ_BYTES]

    def test_dm_router_decisions_rows(self):
        machine, workload, engine = self.build()
        from repro.workloads.base import ThroughputTracker
        tracker = ThroughputTracker()
        workload.spawn_clients(engine, tracker, until=4.0)
        machine.sim.run(until=4.0)
        rows = dm_router_decisions(engine)
        assert [r.backend for r in rows] == list(FLEET)
        assert all(r.policy == "rule-based" for r in rows)
        assert sum(r.decisions for r in rows) == \
            sum(engine.router.decisions.values())
        routed_to = [r for r in rows if r.decisions > 0]
        assert all(r.plan_cache_hits + r.plan_cache_misses > 0
                   for r in routed_to)

    def test_dm_router_decisions_on_plain_engine(self):
        from repro.backends import make_backend
        from repro.hardware.machine import Machine
        from repro.workloads import make_workload

        machine = Machine()
        allocation = ResourceAllocation()
        allocation.apply_to(machine)
        workload = make_workload("tpch", 10)
        engine = make_backend("columnstore-dss").build_engine(
            machine, workload, allocation
        )
        (row,) = dm_router_decisions(engine)
        assert row.backend == "columnstore-dss"
        assert row.policy == ""
        assert row.decisions == 0
