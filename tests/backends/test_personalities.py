"""Backend personalities: registry, governor mapping, and the resource
profiles the router decides on — plus each personality's characteristic
behavior (columnstore wins DSS and loses OLTP; serverless cold-starts
and meters billing)."""

import pytest

from repro.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    backend_names,
    make_backend,
)
from repro.backends.serverless import ServerlessEngine
from repro.core.experiment import run_experiment
from repro.core.knobs import ResourceAllocation
from repro.engine.engine import SqlEngine
from repro.engine.resource_governor import ResourceGovernor
from repro.errors import ConfigurationError
from repro.hardware.machine import Machine
from repro.units import MB
from repro.workloads import make_workload


def build(backend_name, workload="tpch", sf=10,
          allocation=ResourceAllocation()):
    machine = Machine()
    allocation.apply_to(machine)
    w = make_workload(workload, sf)
    return make_backend(backend_name).build_engine(machine, w, allocation)


class TestRegistry:
    def test_three_personalities_registered(self):
        assert set(backend_names()) == {
            "rowstore-oltp", "columnstore-dss", "elastic-serverless"
        }
        assert DEFAULT_BACKEND == "rowstore-oltp"

    def test_names_sorted_and_stable(self):
        assert list(backend_names()) == sorted(BACKENDS)

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            make_backend("hekaton")

    def test_profiles_are_complete(self):
        for name in backend_names():
            profile = make_backend(name).resource_profile()
            assert profile.scan_bandwidth_score > 0
            assert profile.point_lookup_score > 0
            assert 0 < profile.parallel_efficiency <= 1
            assert profile.startup_seconds >= 0


class TestGovernorMapping:
    def test_rowstore_reproduces_seed_governor(self):
        allocation = ResourceAllocation(logical_cores=8, grant_percent=15.0)
        governor = make_backend("rowstore-oltp").governor_for(allocation)
        assert governor == ResourceGovernor(max_dop=8, grant_percent=15.0)
        assert not governor.overload_protection_enabled

    def test_columnstore_defaults_enable_protection(self):
        governor = make_backend("columnstore-dss").governor_for(
            ResourceAllocation()
        )
        assert governor.overload_protection_enabled
        assert governor.grant_timeout_s == 120.0
        assert governor.small_query_bypass_bytes == 8 * MB

    def test_explicit_protection_wins_over_personality_defaults(self):
        allocation = ResourceAllocation(grant_timeout_s=3.0)
        governor = make_backend("columnstore-dss").governor_for(allocation)
        assert governor.grant_timeout_s == 3.0

    def test_serverless_caps_grant_percent(self):
        governor = make_backend("elastic-serverless").governor_for(
            ResourceAllocation()
        )
        assert governor.grant_percent == 10.0
        assert governor.grant_timeout_s == 5.0


class TestEngineConstruction:
    def test_engine_carries_personality_name(self):
        for name in backend_names():
            engine = build(name)
            assert engine.backend_name == name
            assert engine.plan_cache.namespace == name

    def test_rowstore_builds_plain_engine(self):
        engine = build("rowstore-oltp")
        assert type(engine) is SqlEngine

    def test_serverless_builds_subclass(self):
        assert isinstance(build("elastic-serverless"), ServerlessEngine)


class TestPersonalityBehavior:
    def test_columnstore_beats_rowstore_on_dss(self):
        row = run_experiment("tpch", 10, duration=20.0)
        col = run_experiment("tpch", 10, duration=20.0,
                             backend="columnstore-dss")
        assert col.backend == "columnstore-dss"
        assert col.primary_metric > 1.5 * row.primary_metric

    def test_columnstore_loses_to_rowstore_on_oltp(self):
        row = run_experiment("asdb", 2000, duration=3.0)
        col = run_experiment("asdb", 2000, duration=3.0,
                             backend="columnstore-dss")
        assert col.primary_metric < 0.5 * row.primary_metric

    def test_serverless_cold_starts_and_bills(self):
        machine = Machine()
        allocation = ResourceAllocation()
        allocation.apply_to(machine)
        workload = make_workload("tpch", 10)
        engine = make_backend("elastic-serverless").build_engine(
            machine, workload, allocation
        )
        from repro.workloads.base import ThroughputTracker
        tracker = ThroughputTracker()
        workload.spawn_clients(engine, tracker, until=5.0)
        machine.sim.run(until=5.0)
        billing = engine.billing_summary()
        assert engine.cold_starts >= 1
        assert billing["billed_core_seconds"] > 0
        assert billing["cold_starts"] == engine.cold_starts

    def test_serverless_autoscale_bounded_by_governor(self):
        from repro.workloads.tpch import tpch_query

        engine = build("elastic-serverless", allocation=ResourceAllocation())
        for number in (1, 6, 18, 21):
            dop = engine.autoscale_dop(tpch_query(number, 10))
            assert 1 <= dop <= engine.governor.max_dop
