#!/usr/bin/env python3
"""Architect's study: is the scale-out design right for databases?

§6 observes that LLCs are under-utilized while cores and storage
bandwidth pay off, and §11 cites the scale-out processor proposal [31]:
spend the die area of the big cache on more cores.  This example runs
the full workload study on three machine designs and reports who wins
where — the cross-hardware evaluation the paper's §1 says architects
need.
"""

from repro.core.experiment import Experiment, ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.report import format_table
from repro.hardware.presets import PAPER_TESTBED, SCALE_OUT, SCALE_UP
from repro.units import MIB

DESIGNS = [
    ("paper testbed (16c/40MB)", PAPER_TESTBED),
    ("scale-out   (32c/16MB)", SCALE_OUT),
    ("scale-up    (32c/80MB+)", SCALE_UP),
]

WORKLOADS = [
    ("asdb", 2000, 6.0),
    ("tpce", 5000, 10.0),
    ("tpch", 30, 150.0),
    ("tpch", 300, 1500.0),
]


def main() -> None:
    rows = []
    for workload, sf, duration in WORKLOADS:
        row = [f"{workload} SF={sf}"]
        baseline = None
        for _, spec in DESIGNS:
            machine = spec.build()
            config = ExperimentConfig(
                workload=workload, scale_factor=sf,
                allocation=ResourceAllocation(
                    logical_cores=machine.topology.total_logical_cpus,
                    llc_mb=(spec.llc_per_socket_bytes // MIB) * spec.sockets,
                ),
                duration=duration, machine_spec=spec,
            )
            perf = Experiment(config).run().primary_metric
            baseline = baseline or perf
            row.append(f"{perf / baseline:.2f}x")
        rows.append(row)

    print(format_table(
        ["workload"] + [name for name, _ in DESIGNS],
        rows,
        title="Performance relative to the paper's testbed",
    ))
    print(
        "\nReading: transactional workloads, whose hot sets are tiny and "
        "whose misses stream past any cache (§5), convert the scale-out "
        "design's extra cores directly into TPS. Analytical workloads keep "
        "more of the benefit of a big LLC, but even they gain more from "
        "cores than from cache beyond the knee — the §6 conclusion."
    )


if __name__ == "__main__":
    main()
