"""Tests for the figure regenerators (fast configurations) and report
formatting."""

import pytest

from repro.core.figures import (
    Table2Row,
    fig2_cores,
    fig2_llc,
    fig7_q20_plans,
    q20_memory_vs_dop,
    table2,
)
from repro.core.report import format_series, format_table, sparkline


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_format_table_title_and_specials(self):
        text = format_table(
            ["x"], [[None], [True], [float("nan")], [float("inf")]],
            title="T",
        )
        assert text.startswith("T")
        assert "-" in text and "yes" in text and "nan" in text and "inf" in text

    def test_format_series(self):
        text = format_series("x", [1.0, 2.0], {"y": [10.0, 20.0]})
        assert "x" in text and "y" in text
        assert "10.00" in text

    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[0] == " " and line[-1] == "@"
        assert sparkline([]) == ""


class TestTable2:
    def test_rows_cover_study_matrix(self):
        rows = table2()
        assert len(rows) == 10
        assert all(isinstance(r, Table2Row) for r in rows)

    def test_values_match_paper(self):
        for row in table2():
            assert row.data_gb == pytest.approx(row.paper_data_gb, rel=0.02)

    def test_shading(self):
        shaded = {
            (r.workload, r.scale_factor) for r in table2() if not r.fits_in_memory
        }
        assert ("tpch", 300) in shaded
        assert ("asdb", 6000) in shaded
        assert ("tpch", 10) not in shaded


class TestSweepFigures:
    def test_fig2_cores_small(self):
        series = fig2_cores("asdb", 2000, cores=(4, 16), duration_scale=0.2)
        assert series.xs == [4.0, 16.0]
        assert series.performance[1] > series.performance[0]

    def test_fig2_llc_small(self):
        series = fig2_llc("asdb", 2000, sizes_mb=(2, 40), duration_scale=0.2)
        assert series.mpki[0] > series.mpki[1]
        assert series.performance[1] > series.performance[0]


class TestFig7:
    def test_q20_plan_artifacts(self):
        result = fig7_q20_plans(300)
        assert "-->" in result.serial_plan_text
        assert "<=>" in result.parallel_plan_text
        assert result.serial_uses_hash_for_part
        assert result.parallel_uses_nlj_for_part
        assert "same shape: False" in result.diff_summary


class TestQ20Memory:
    def test_serial_less_than_parallel(self):
        serial, parallel = q20_memory_vs_dop(100)
        assert serial < parallel
