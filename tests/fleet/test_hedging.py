"""Hedged reads, retry budgets, and brownout-aware shedding."""

from types import SimpleNamespace

import pytest

from repro.engine.statistics import dm_hedge_outcomes
from repro.errors import FaultInjectionError
from repro.fleet.health import HeartbeatMonitor
from repro.fleet.hedging import HedgedReader, RetryBudget
from repro.hardware.storage import RANDOM_READ_LATENCY
from repro.units import KIB

from tests.fleet.conftest import build_fleet

READ_BYTES = 256 * KIB
PAGES = READ_BYTES / (8 * 1024)

#: Per-read device time with the straggler brownout below (latency x20).
STRAGGLER_FACTOR = 20.0
STRAGGLER_LATENCY = PAGES * RANDOM_READ_LATENCY * STRAGGLER_FACTOR


def reader_fleet(hedging=True, monitor=False, replicas=3, **reader_kwargs):
    sim, group = build_fleet(replicas=replicas)
    mon = HeartbeatMonitor(group) if monitor else None
    if mon is not None:
        mon.install()
    reader = HedgedReader(group, monitor=mon, enabled=hedging,
                          read_bytes=READ_BYTES, **reader_kwargs)
    return sim, group, reader


def run_reads(sim, reader, count, interval=0.005, horizon=60.0):
    """Run *count* sequential reads; returns their latencies.

    The horizon is relative to the current clock — ``run(until=...)`` is
    absolute and these helpers are called back to back.
    """
    from repro.sim.process import Timeout

    latencies = []

    def client():
        for _ in range(count):
            yield Timeout(interval)
            latency = yield from reader.read()
            latencies.append(latency)

    sim.spawn(client(), name="test-reader")
    sim.run(until=sim.now + horizon)
    assert len(latencies) == count, "reads did not all complete in time"
    return latencies


def brownout(replica, latency_factor=STRAGGLER_FACTOR):
    replica.machine.ssd.apply_brownout(read_factor=0.05, write_factor=0.5,
                                       latency_factor=latency_factor)


class TestRetryBudget:
    def sim(self, now=0.0):
        return SimpleNamespace(now=now)

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            RetryBudget(self.sim(), capacity=0.0)
        with pytest.raises(FaultInjectionError):
            RetryBudget(self.sim(), refill_per_s=-1.0)

    def test_spend_down_to_denial(self):
        budget = RetryBudget(self.sim(), capacity=2.0, refill_per_s=0.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 2
        assert budget.denied == 1

    def test_refills_with_simulated_time(self):
        sim = self.sim()
        budget = RetryBudget(sim, capacity=2.0, refill_per_s=1.0)
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        sim.now = 1.5
        assert budget.tokens() == pytest.approx(1.5)
        assert budget.try_spend()

    def test_refill_clamps_at_capacity(self):
        sim = self.sim()
        budget = RetryBudget(sim, capacity=4.0, refill_per_s=100.0)
        budget.try_spend()
        sim.now = 10.0
        assert budget.tokens() == 4.0

    def test_tenants_are_isolated(self):
        budget = RetryBudget(self.sim(), capacity=1.0, refill_per_s=0.0)
        assert budget.try_spend("a")
        assert not budget.try_spend("a")
        assert budget.try_spend("b")


class TestHedgedReads:
    def test_fast_path_never_hedges(self):
        sim, group, reader = reader_fleet()
        latencies = run_reads(sim, reader, 20)
        assert len(latencies) == 20
        assert reader.hedges == 0
        assert reader.reads == 20

    def test_hedge_dodges_a_straggling_primary(self):
        sim, group, reader = reader_fleet()
        # Roomy budget: this test isolates the hedging path, not the
        # budget guard (covered below).
        reader.budget = RetryBudget(sim, capacity=100.0, refill_per_s=100.0)
        run_reads(sim, reader, 10)  # warm the latency distribution
        brownout(group.primary)
        latencies = run_reads(sim, reader, 30)
        assert reader.hedges > 0
        assert reader.hedge_wins > 0
        # Every hedged read beat the straggler's full device latency.
        assert max(latencies) < STRAGGLER_LATENCY

    def test_disabled_reader_eats_the_full_tail(self):
        sim, group, reader = reader_fleet(hedging=False)
        run_reads(sim, reader, 10)
        brownout(group.primary)
        latencies = run_reads(sim, reader, 10)
        assert reader.hedges == 0
        assert max(latencies) >= STRAGGLER_LATENCY

    def test_budget_bounds_hedge_amplification(self):
        sim, group, reader = reader_fleet(
            budget=None)  # replaced below with a tiny bucket
        reader.budget = RetryBudget(sim, capacity=2.0, refill_per_s=0.0)
        run_reads(sim, reader, 10)
        brownout(group.primary)
        run_reads(sim, reader, 30)
        assert reader.hedges <= 2
        assert reader.budget_denied > 0

    def test_hedge_shed_when_every_spare_is_browned_out(self):
        sim, group, reader = reader_fleet()
        run_reads(sim, reader, 10)
        for replica in group.replicas:
            brownout(replica)
        run_reads(sim, reader, 10)
        assert reader.sheds > 0
        assert reader.hedges == 0

    def test_latency_distribution_feeds_the_hedge_delay(self):
        sim, group, reader = reader_fleet()
        assert reader._hedge_delay() == reader.min_hedge_delay  # cold
        run_reads(sim, reader, 20)
        assert len(reader.latencies) == 20
        assert reader._hedge_delay() >= reader.min_hedge_delay

    def test_min_hedge_delay_covers_the_unloaded_read(self):
        sim, group, reader = reader_fleet()
        unloaded = PAGES * RANDOM_READ_LATENCY
        assert reader.min_hedge_delay >= unloaded

    def test_explicit_min_hedge_delay_is_honored(self):
        sim, group, reader = reader_fleet(min_hedge_delay=0.123)
        assert reader._hedge_delay() == 0.123


class TestPlacement:
    def test_primary_first_by_default(self):
        _, group, reader = reader_fleet()
        assert reader._pick() is group.primary

    def test_exclusion_skips_the_first_attempt_replica(self):
        _, group, reader = reader_fleet()
        alternate = reader._pick(exclude=(group.primary.index,))
        assert alternate is not group.primary

    def test_suspected_primary_is_routed_around(self):
        sim, group, reader = reader_fleet(monitor=True)
        sim.run(until=0.5)
        for _ in range(8):
            reader.monitor.note_service_time(group.primary.index, 0.5)
            reader.monitor.note_service_time(1, 0.003)
        assert reader.monitor.suspected(group.primary.index)
        assert reader._pick() is not group.primary

    def test_all_suspected_degrades_to_any_reachable(self):
        sim, group = build_fleet()
        monitor = HeartbeatMonitor(group)  # never installed: no beats
        reader = HedgedReader(group, monitor=monitor, read_bytes=READ_BYTES)
        sim.run(until=1.0)  # clock advances; every replica looks silent
        assert all(monitor.suspected(r.index) for r in group.replicas)
        assert reader._pick() is not None

    def test_total_outage_returns_none(self):
        _, group, reader = reader_fleet()
        for replica in group.replicas:
            replica.up = False
        assert reader._pick() is None


class TestHedgeDmv:
    def test_dm_hedge_outcomes_snapshot(self):
        sim, group, reader = reader_fleet()
        run_reads(sim, reader, 10)
        brownout(group.primary)
        run_reads(sim, reader, 20)
        row = dm_hedge_outcomes(reader)
        assert row.reads == 30
        assert row.hedges == reader.hedges > 0
        assert row.hedge_wins == reader.hedge_wins
        assert row.budget_tokens <= reader.budget.capacity
