"""Append-only sweep journal: what happened to every grid point.

The :class:`~repro.core.resultcache.ResultCache` is the resume mechanism
for *successes* — a re-run of a partially completed sweep short-circuits
every cached point.  The journal covers the other half: it records every
attempt (ok / crash / timeout / error) keyed by config digest, so a
resumed sweep

* knows how many attempts a config has already burned (attempt numbering
  is global across invocations — a fault spec that crashes the first
  attempt fails once, ever, not once per invocation), and
* can report *why* the holes in a previous run's grid exist.

Besides attempt records the journal carries *event* lines —
:meth:`SweepJournal.note` — free-form JSON keyed by an ``event`` kind.
This table is the registry of every kind written anywhere in the repo
(DESIGN.md mirrors it; add new kinds to both):

===============  ==========================  =================================
kind             writer                      payload highlights
===============  ==========================  =================================
breaker          core.runner supervisor      circuit-breaker transition,
                                             concurrency before/after
route            core.runner supervisor      router policy + per-backend
                                             placement counts per point
fleet            core.runner supervisor      failover/hedge counts a point
                                             observed (digest-keyed)
chaos            core.runner supervisor      canonical fault specs a faulted
                                             point will replay under
chaos-schedule   faults.chaos                seed, scenario, episode list
chaos-episode    faults.chaos                one episode's kind/at/duration
failover         faults.chaos                promotion epoch + window
chaos-report     faults.chaos                invariant verdicts + digest
surrogate        surrogate.planner           predicted points: source,
                                             uncertainty, primary metric
fleet-traffic    fleet.cluster sweeps        fleet point: spec digest +
                                             full FleetReport payload
                                             (replayed on resume)
===============  ==========================  =================================

Attempt records are digest-keyed and drive resume; event lines are
observational — except ``fleet-traffic``, whose payload is complete
enough that :func:`~repro.fleet.cluster.fleet_oversubscription_sweep`
reconstructs finished points from it without re-simulating.

The format is JSON-lines, append-only, and tolerant of torn tails (a
killed run may leave a partial last line; it is dropped with a warning
on load, never raised).  One journal serves one sweep campaign; by
default the supervised runner places it next to the result cache.
"""

from __future__ import annotations

import json
import logging
import os
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterator, List, Optional

log = logging.getLogger(__name__)

#: Attempt outcomes recorded in the journal.
STATUS_OK = "ok"
STATUS_CRASH = "crash"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"

_FAILURE_STATUSES = (STATUS_CRASH, STATUS_TIMEOUT, STATUS_ERROR)


class SweepJournal:
    """JSONL journal of per-config attempts, keyed by config digest."""

    def __init__(self, path: os.PathLike):
        self.path = Path(path)
        self._entries: List[Dict] = []
        self._events: List[Dict] = []
        self._by_digest: Dict[str, List[Dict]] = defaultdict(list)
        self._needs_newline = False
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            log.warning("sweep journal %s unreadable (%s); starting empty",
                        self.path, exc)
            return
        # A torn tail has no terminating newline; appending straight to
        # it would weld the next record onto the fragment and lose both.
        self._needs_newline = bool(text) and not text.endswith("\n")
        lines = text.splitlines()
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                if number == len(lines):
                    # Torn tail from a killed writer: expected damage —
                    # the attempt it described never committed anyway.
                    log.warning(
                        "sweep journal %s: dropping truncated trailing "
                        "line %d", self.path, number,
                    )
                else:
                    log.warning(
                        "sweep journal %s: skipping corrupt line %d",
                        self.path, number,
                    )
                continue
            if not isinstance(entry, dict):
                log.warning("sweep journal %s: skipping non-record line %d",
                            self.path, number)
            elif "event" in entry:
                # Events may also carry a digest (e.g. per-point chaos
                # schedules) — the event marker wins, or a reloaded note
                # would masquerade as an attempt record.
                self._events.append(entry)
            elif "digest" in entry:
                self._remember(entry)

    def _remember(self, entry: Dict) -> None:
        self._entries.append(entry)
        self._by_digest[entry["digest"]].append(entry)

    def record(
        self,
        digest: str,
        status: str,
        attempt: int,
        index: int = -1,
        error: Optional[str] = None,
    ) -> None:
        """Append one attempt record and flush it to disk.

        Journal IO must never fail a sweep: disk errors degrade to a
        logged warning (the in-memory view stays consistent).
        """
        entry: Dict = {"digest": digest, "status": status, "attempt": attempt,
                       "index": index}
        if error:
            entry["error"] = error
        self._remember(entry)
        self._append(entry)

    def note(self, event: str, **fields) -> None:
        """Append one event line (no digest) — e.g. a breaker transition.

        Same durability contract as :meth:`record`: disk trouble degrades
        to a warning, never an exception.
        """
        entry: Dict = {"event": event, **fields}
        self._events.append(entry)
        self._append(entry)

    def _append(self, entry: Dict) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                if self._needs_newline:
                    # Seal a torn tail so the fragment stays its own
                    # (skippable) line instead of eating this record.
                    handle.write("\n")
                    self._needs_newline = False
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        except OSError as exc:
            log.warning("could not append to sweep journal %s: %s",
                        self.path, exc)

    # -- queries ---------------------------------------------------------------

    def entries(self, digest: str) -> Iterator[Dict]:
        return iter(self._by_digest.get(digest, ()))

    def events(self, event: Optional[str] = None) -> List[Dict]:
        """Event lines recorded via :meth:`note`, optionally filtered."""
        if event is None:
            return list(self._events)
        return [e for e in self._events if e.get("event") == event]

    def attempts(self, digest: str) -> int:
        """Failed attempts burned so far (seeds resumed attempt numbering)."""
        return sum(1 for e in self._by_digest.get(digest, ())
                   if e["status"] in _FAILURE_STATUSES)

    def last_status(self, digest: str) -> Optional[str]:
        history = self._by_digest.get(digest)
        return history[-1]["status"] if history else None

    def failed_digests(self) -> List[str]:
        """Digests whose most recent attempt failed."""
        return [digest for digest, history in self._by_digest.items()
                if history[-1]["status"] in _FAILURE_STATUSES]

    def __len__(self) -> int:
        return len(self._entries)
