"""Capacity sharing with per-job rate caps (water-filling).

The CPU model needs a resource where total capacity ``C`` is shared among
jobs, but job *i* can never use more than its own cap ``m_i`` (a query with
degree of parallelism 4 cannot occupy more than 4 cores even if 32 are
idle).  The fair allocation is *water-filling*: start from an equal split
and redistribute the share that capped jobs cannot use among the rest.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.process import Simulator, WaitEvent


def waterfill(
    capacity: float,
    caps: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> List[float]:
    """Allocate *capacity* among jobs with per-job maxima *caps*.

    Shares are proportional to *weights* (default: the caps themselves,
    so a 32-worker query weighs 32 times a single-worker transaction),
    clipped at each job's cap, with the excess redistributed among the
    unsaturated jobs.

    >>> waterfill(10.0, [1.0, 100.0, 100.0], weights=[1.0, 1.0, 1.0])
    [1.0, 4.5, 4.5]
    """
    n = len(caps)
    if n == 0:
        return []
    if capacity < 0:
        raise SimulationError("negative capacity")
    if weights is None:
        weights = list(caps)
    if len(weights) != n:
        raise SimulationError("weights must match caps")
    if any(w <= 0 for w in weights):
        raise SimulationError("weights must be positive")
    rates = [0.0] * n
    remaining = capacity
    active = list(range(n))
    while active and remaining > 1e-15:
        total_weight = sum(weights[i] for i in active)
        shares = {i: remaining * weights[i] / total_weight for i in active}
        saturated = [i for i in active if caps[i] - rates[i] <= shares[i]]
        if not saturated:
            for i in active:
                rates[i] += shares[i]
            break
        for i in saturated:
            remaining -= caps[i] - rates[i]
            rates[i] = caps[i]
        saturated_set = set(saturated)
        active = [i for i in active if i not in saturated_set]
    return rates


class WaterfillServer:
    """Processor-sharing server with per-job rate caps.

    Jobs submit an amount of work and a cap on the rate at which they may
    be served.  At any instant rates follow :func:`waterfill`.  Completion
    events are recomputed whenever the active set changes.
    """

    class _Job:
        __slots__ = ("remaining", "cap", "gate", "event")

        def __init__(self, remaining: float, cap: float, gate: WaitEvent):
            self.remaining = remaining
            self.cap = cap
            self.gate = gate
            self.event = None

    def __init__(self, sim: Simulator, capacity: float, name: str = "waterfill"):
        if capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self._sim = sim
        self._capacity = capacity
        self.name = name
        self._jobs: Dict[int, WaterfillServer._Job] = {}
        self._next_id = 0
        self._last_update = 0.0
        self.total_work_done = 0.0
        self._busy_time_area = 0.0  # integral of (work rate) over time

    @property
    def capacity(self) -> float:
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change total capacity at runtime (e.g. cpuset change)."""
        if capacity <= 0:
            raise SimulationError(f"{self.name}: capacity must be positive")
        self._advance()
        self._capacity = capacity
        self._reschedule()

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def active_weight(self) -> float:
        """Sum of the active jobs' rate caps (busy-core estimate)."""
        return sum(min(job.cap, self._capacity) for job in self._jobs.values())

    def utilization(self, end_time: float) -> float:
        """Mean fraction of capacity in use over [0, end_time]."""
        self._advance()
        if end_time <= 0:
            return 0.0
        return self._busy_time_area / (self._capacity * end_time)

    def _rates(self) -> Dict[int, float]:
        ids = list(self._jobs.keys())
        caps = [self._jobs[i].cap for i in ids]
        rates = waterfill(self._capacity, caps)
        return dict(zip(ids, rates))

    def _advance(self) -> None:
        now = self._sim.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._jobs:
            for job_id, rate in self._rates().items():
                job = self._jobs[job_id]
                done = rate * elapsed
                job.remaining = max(0.0, job.remaining - done)
                self.total_work_done += done
                self._busy_time_area += done
        self._last_update = now

    def _reschedule(self) -> None:
        rates = self._rates()
        for job_id, job in list(self._jobs.items()):
            if job.event is not None:
                job.event.cancel()
            rate = rates.get(job_id, 0.0)
            delay = job.remaining / rate if rate > 0 else float("inf")
            job.event = self._sim.loop.schedule_after(
                delay, lambda ev, jid=job_id: self._complete(jid)
            )

    def _complete(self, job_id: int) -> None:
        self._advance()
        job = self._jobs.pop(job_id, None)
        if job is None:
            return
        self._reschedule()
        job.gate.trigger()

    def submit(self, work: float, cap: float) -> Generator:
        """Generator: suspends until *work* is served at rate <= *cap*."""
        if work < 0:
            raise SimulationError(f"{self.name}: negative work {work}")
        if cap <= 0:
            raise SimulationError(f"{self.name}: cap must be positive")
        if work == 0:
            return None
        self._advance()
        gate = self._sim.event()
        self._jobs[self._next_id] = WaterfillServer._Job(work, cap, gate)
        self._next_id += 1
        self._reschedule()
        yield gate
        return None
