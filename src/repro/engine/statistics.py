"""DMV-style statistics views over a running engine.

The paper's Table 3 comes from SQL Server's wait statistics (the
``sys.dm_os_wait_stats`` view); its §8 analysis reads memory-grant
information.  This module exposes the same surface on the simulated
engine so analyses can be written the way a practitioner would write
them — as queries over management views rather than pokes into model
internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.engine.engine import SqlEngine
from repro.engine.locks import WaitType
from repro.units import GIB


@dataclass(frozen=True)
class WaitStatRow:
    """One row of ``dm_os_wait_stats``."""

    wait_type: str
    waiting_tasks_count: int
    wait_time_ms: float

    @property
    def avg_wait_ms(self) -> float:
        if self.waiting_tasks_count == 0:
            return 0.0
        return self.wait_time_ms / self.waiting_tasks_count


def dm_os_wait_stats(engine: SqlEngine) -> List[WaitStatRow]:
    """Cumulative waits by type, like ``sys.dm_os_wait_stats``."""
    accounting = engine.locks.accounting
    return [
        WaitStatRow(
            wait_type=wait_type.value,
            waiting_tasks_count=accounting.wait_count[wait_type],
            wait_time_ms=accounting.wait_time[wait_type] * 1000.0,
        )
        for wait_type in WaitType
    ]


@dataclass(frozen=True)
class MemoryGrantRow:
    """One row of ``dm_exec_query_memory_grants``-style output."""

    query: str
    requested_kb: float
    granted_kb: float
    spilled: bool


def dm_exec_query_memory_grants(engine: SqlEngine, specs) -> List[MemoryGrantRow]:
    """Grant admission outcomes for a set of query specs under the
    engine's current governor settings."""
    rows = []
    for spec in specs:
        optimized = engine.optimize(spec)
        grant = engine.admit(optimized)
        rows.append(
            MemoryGrantRow(
                query=spec.name,
                requested_kb=grant.required_bytes / 1024.0,
                granted_kb=grant.granted_bytes / 1024.0,
                spilled=grant.spills,
            )
        )
    return rows


@dataclass(frozen=True)
class ResourceSemaphoreRow:
    """A ``dm_exec_query_resource_semaphores``-style snapshot of the
    grant queue: pool state plus the cumulative overload counters."""

    pool_kb: float
    available_kb: float
    waiter_count: int
    grant_requests: int
    grant_waits: int
    grant_wait_ms: float
    grant_timeouts: int
    grant_degrades: int
    grant_bypasses: int
    grant_throttles: int
    grant_queue_peak: int


def dm_exec_query_resource_semaphores(engine: SqlEngine) -> ResourceSemaphoreRow:
    sem = engine.semaphore
    stats = sem.summary()
    return ResourceSemaphoreRow(
        pool_kb=sem.pool_bytes / 1024.0,
        available_kb=sem.free_bytes / 1024.0,
        waiter_count=sem.waiter_count,
        grant_requests=stats["grant_requests"],
        grant_waits=stats["grant_waits"],
        grant_wait_ms=stats["grant_wait_seconds"] * 1000.0,
        grant_timeouts=stats["grant_timeouts"],
        grant_degrades=stats["grant_degrades"],
        grant_bypasses=stats["grant_bypasses"],
        grant_throttles=stats["grant_throttles"],
        grant_queue_peak=stats["grant_queue_peak"],
    )


@dataclass(frozen=True)
class BufferPoolSummary:
    """A ``dm_os_buffer_descriptors`` aggregate."""

    capacity_gb: float
    database_gb: float
    resident_fraction: float
    reserved_for_grants_gb: float


def dm_os_buffer_summary(engine: SqlEngine) -> BufferPoolSummary:
    pool = engine.buffer_pool
    return BufferPoolSummary(
        capacity_gb=pool.capacity_bytes / GIB,
        database_gb=pool.database.total_bytes / GIB,
        resident_fraction=pool.resident_fraction(),
        reserved_for_grants_gb=pool.reserved_grant_bytes / GIB,
    )


@dataclass(frozen=True)
class RouterDecisionRow:
    """One row of ``dm_router_decisions``: a backend's share of the
    router's placements plus its (personality-keyed) plan-cache traffic."""

    backend: str
    policy: str                 #: router policy, "" on an unrouted engine
    decisions: int              #: queries the router placed here
    fallbacks: int              #: fleet-wide rule-based default routes
    inflight: int               #: queries currently executing here
    plan_cache_hits: int
    plan_cache_misses: int
    plan_cache_entries: int
    suspended: bool = False     #: health-suspended (routed around)
    reroutes: int = 0           #: fleet-wide placements moved off suspended


def dm_router_decisions(engine) -> List[RouterDecisionRow]:
    """Routing decisions and per-backend plan-cache counters.

    On a :class:`~repro.backends.routed.RoutedEngine` this reports one
    row per fleet member; a plain :class:`SqlEngine` yields a single row
    for its own personality with empty routing columns, so monitoring
    code can query the view without caring how the engine was built.
    """
    router = getattr(engine, "router", None)
    if router is None:
        info = engine.plan_cache.info()
        return [
            RouterDecisionRow(
                backend=engine.backend_name,
                policy="",
                decisions=0,
                fallbacks=0,
                inflight=0,
                plan_cache_hits=info["hits"],
                plan_cache_misses=info["misses"],
                plan_cache_entries=info["currsize"],
            )
        ]
    rows = []
    for name in router.order:
        info = engine.engines[name].plan_cache.info()
        rows.append(
            RouterDecisionRow(
                backend=name,
                policy=router.policy,
                decisions=router.decisions.get(name, 0),
                fallbacks=router.fallbacks,
                inflight=router.inflight.get(name, 0),
                plan_cache_hits=info["hits"],
                plan_cache_misses=info["misses"],
                plan_cache_entries=info["currsize"],
                suspended=name in router.suspended,
                reroutes=router.reroutes,
            )
        )
    return rows


@dataclass(frozen=True)
class ReplicaHealthRow:
    """One row of ``dm_fleet_replicas``: a replica's role, reachability,
    replication progress, and the failure detector's current view."""

    replica: int
    role: str                   #: "primary" | "secondary"
    up: bool
    fenced: bool
    partitioned: bool
    durable_lsn: int
    checkpoint_lsn: int
    recoveries: int
    suspicion: float            #: phi-accrual score (0.0 without a monitor)
    suspected: bool


def dm_fleet_replicas(group, monitor=None) -> List[ReplicaHealthRow]:
    """Fleet membership and health, one row per replica.

    Duck-typed over :class:`~repro.fleet.replicas.ReplicaGroup` plus an
    optional :class:`~repro.fleet.health.HeartbeatMonitor` — the DMV
    module stays importable without the fleet package loaded.
    """
    rows = []
    for replica in group.replicas:
        if monitor is not None:
            suspicion = monitor.suspicion(replica.index)
            suspected = monitor.suspected(replica.index)
        else:
            suspicion, suspected = 0.0, False
        rows.append(
            ReplicaHealthRow(
                replica=replica.index,
                role=replica.role,
                up=replica.up,
                fenced=replica.fenced,
                partitioned=replica.partitioned,
                durable_lsn=replica.durable_lsn,
                checkpoint_lsn=replica.checkpoint_lsn,
                recoveries=replica.recoveries,
                suspicion=suspicion,
                suspected=suspected,
            )
        )
    return rows


@dataclass(frozen=True)
class HedgeOutcomeRow:
    """One row of ``dm_hedge_outcomes``: the hedged-read policy's
    counters plus the budget's remaining headroom."""

    reads: int
    hedges: int
    hedge_wins: int
    budget_denied: int
    sheds: int
    stalls: int
    budget_tokens: float        #: default tenant's remaining hedge tokens


def dm_hedge_outcomes(reader) -> HedgeOutcomeRow:
    """Hedging effectiveness for a
    :class:`~repro.fleet.hedging.HedgedReader` (duck-typed)."""
    return HedgeOutcomeRow(
        reads=reader.reads,
        hedges=reader.hedges,
        hedge_wins=reader.hedge_wins,
        budget_denied=reader.budget_denied,
        sheds=reader.sheds,
        stalls=reader.stalls,
        budget_tokens=reader.budget.tokens(),
    )


@dataclass(frozen=True)
class PerfCounterRow:
    """One row of a PCM-style snapshot."""

    counter: str
    value: float


def pcm_snapshot(engine: SqlEngine) -> List[PerfCounterRow]:
    """Instantaneous cumulative counters, PCM-style."""
    return [
        PerfCounterRow(counter=name, value=value)
        for name, value in sorted(engine.counter_totals().items())
    ]


@dataclass(frozen=True)
class FleetSloRow:
    """One row of ``dm_fleet_slo``: a tenant's traffic outcome against
    its purchased SLO."""

    tenant: str
    priority: int
    arrivals: int
    completed: int
    shed: int
    governed: int
    goodput_tps: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    slo_p99_ms: float
    slo_ok: bool
    first_shed_at: float        #: NaN when the tenant never shed


def dm_fleet_slo(report) -> List[FleetSloRow]:
    """Per-tenant SLO attainment for a fleet-traffic run, most
    protected class first.

    Duck-typed over :class:`~repro.fleet.cluster.FleetReport` (needs
    ``tenants`` mapping names to per-tenant stats) so this module stays
    importable without the fleet package loaded.
    """
    rows = []
    for name in sorted(report.tenants):
        stats = report.tenants[name]
        rows.append(
            FleetSloRow(
                tenant=stats.name,
                priority=stats.priority,
                arrivals=stats.arrivals,
                completed=stats.completed,
                shed=stats.shed,
                governed=stats.governed,
                goodput_tps=stats.goodput_tps,
                p50_ms=stats.p50_ms,
                p99_ms=stats.p99_ms,
                p999_ms=stats.p999_ms,
                slo_p99_ms=stats.slo_p99_ms,
                slo_ok=stats.slo_ok,
                first_shed_at=(stats.first_shed_at
                               if stats.first_shed_at is not None
                               else float("nan")),
            )
        )
    rows.sort(key=lambda row: (row.priority, row.tenant))
    return rows
