"""Predictive performance models (§10's second research question).

The paper asks what models are needed to estimate the impact of resource
changes.  Two reference models are provided and can be validated against
the simulator:

* :class:`LinearModel` — throughput proportional to the varied resource
  (the naive model Fig 5 shows overestimating bandwidth needs);
* :class:`RooflineModel` — throughput limited by the binding constraint
  among CPU capacity, read bandwidth, and write bandwidth, fitted from a
  small number of observations.

Both are deliberately simple: the point (and the accompanying benchmark)
is to quantify *how much* better a bottleneck-aware model predicts the
measured response than a linear one — echoing the paper's finding that
linear reasoning overallocates by ~20% at the Fig 5 probe point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def _validate_xy(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys) or len(xs) < 2:
        raise ConfigurationError("need at least two aligned observations")
    if any(x <= 0 for x in xs):
        raise ConfigurationError("resource amounts must be positive")


@dataclass
class LinearModel:
    """Throughput = slope x resource (fit through the origin)."""

    slope: float = 0.0

    def fit(self, xs: Sequence[float], ys: Sequence[float]) -> "LinearModel":
        _validate_xy(xs, ys)
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        self.slope = float((x @ y) / (x @ x))
        return self

    def predict(self, x: float) -> float:
        return self.slope * x

    def required_resource(self, target: float) -> float:
        if self.slope <= 0:
            return float("inf")
        return target / self.slope


@dataclass
class RooflineModel:
    """Throughput = min(ceiling, slope x resource).

    ``ceiling`` captures the other binding resource (e.g. CPU when the
    bandwidth axis is swept); ``slope`` the bandwidth-bound regime.
    Fitted by grid search over the breakpoint.
    """

    slope: float = 0.0
    ceiling: float = 0.0

    def fit(self, xs: Sequence[float], ys: Sequence[float]) -> "RooflineModel":
        _validate_xy(xs, ys)
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        best = (float("inf"), 0.0, float(y.max()))
        for i in range(1, len(x) + 1):
            # Points [0, i) in the rising regime, the rest at the ceiling.
            rising_x, rising_y = x[:i], y[:i]
            slope = float((rising_x @ rising_y) / (rising_x @ rising_x))
            ceiling = float(np.mean(y[i:])) if i < len(y) else float(y[-1])
            prediction = np.minimum(slope * x, ceiling)
            error = float(np.sum((prediction - y) ** 2))
            if error < best[0]:
                best = (error, slope, ceiling)
        _, self.slope, self.ceiling = best
        return self

    def predict(self, x: float) -> float:
        return min(self.ceiling, self.slope * x)

    def required_resource(self, target: float) -> float:
        """Smallest resource achieving *target* (inf if above the roof)."""
        if target > self.ceiling or self.slope <= 0:
            return float("inf")
        return target / self.slope

    @property
    def breakpoint(self) -> float:
        """Resource amount where the ceiling starts to bind."""
        if self.slope <= 0:
            return float("inf")
        return self.ceiling / self.slope


@dataclass(frozen=True)
class ModelComparison:
    """Prediction quality of two models on held-out observations."""

    linear_rmse: float
    roofline_rmse: float
    linear_required: float
    roofline_required: float
    target: float

    @property
    def roofline_wins(self) -> bool:
        return self.roofline_rmse <= self.linear_rmse

    @property
    def overallocation_fraction(self) -> float:
        """How much extra resource the linear model would buy for the
        target (the Fig 5 statistic, generalized)."""
        if self.roofline_required <= 0 or self.roofline_required == float("inf"):
            return 0.0
        return self.linear_required / self.roofline_required - 1.0


def compare_models(
    xs: Sequence[float],
    ys: Sequence[float],
    target_fraction: float = 0.9,
) -> ModelComparison:
    """Fit both models on the observations and compare them.

    ``target_fraction`` positions the provisioning target relative to the
    maximum observed throughput.
    """
    _validate_xy(xs, ys)
    linear = LinearModel().fit(xs, ys)
    roofline = RooflineModel().fit(xs, ys)
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    linear_rmse = float(np.sqrt(np.mean((linear.slope * x - y) ** 2)))
    roofline_pred = np.minimum(roofline.slope * x, roofline.ceiling)
    roofline_rmse = float(np.sqrt(np.mean((roofline_pred - y) ** 2)))
    target = target_fraction * float(y.max())
    return ModelComparison(
        linear_rmse=linear_rmse,
        roofline_rmse=roofline_rmse,
        linear_required=linear.required_resource(target),
        roofline_required=roofline.required_resource(target),
        target=target,
    )
