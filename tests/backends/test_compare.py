"""Cross-backend comparison grids and the routing counters they surface
on SweepReport and in the sweep journal."""

import json

import pytest

from repro.backends.compare import compare_admission, compare_fig2
from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import ResultCache
from repro.core.runner import JOURNAL_BASENAME, run_supervised
from repro.core.sweeps import core_sweep, on_backend
from repro.errors import ConfigurationError


class TestOnBackend:
    def test_retargets_every_config(self):
        base = core_sweep("tpch", 10, cores=(8, 32))
        retargeted = on_backend(base, backend="columnstore-dss")
        assert all(c.backend == "columnstore-dss" for c in retargeted)
        assert [c.allocation for c in retargeted] == \
            [c.allocation for c in base]

    def test_router_retarget(self):
        base = core_sweep("tpch", 10, cores=(8,))
        (routed,) = on_backend(base, router="cost-scored",
                               router_backends=("rowstore-oltp",
                                                "columnstore-dss"))
        assert routed.routed
        assert routed.effective_router_backends == \
            ("rowstore-oltp", "columnstore-dss")


class TestCompareFig2:
    def test_series_per_backend_plus_router(self):
        figure = compare_fig2(scale_factor=10, cores=(8, 32),
                              duration_scale=0.05, jobs=2)
        assert figure.labels == (
            "rowstore-oltp", "columnstore-dss", "elastic-serverless",
            "router:rule-based",
        )
        assert figure.xs == (8, 32)
        for label in figure.labels:
            assert len(figure.series[label]) == 2
            assert all(m.primary_metric > 0 for m in figure.series[label])
        routing = figure.routing_summary()
        assert sum(routing["router:rule-based"].values()) > 0

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(ConfigurationError):
            compare_fig2(backends=("rowstore-oltp", "hekaton"))


class TestCompareAdmission:
    def test_router_floor_holds(self):
        comparison = compare_admission(scale_factor=10,
                                       oversubscription=(1, 4),
                                       policies=("immediate", "queued"),
                                       duration_scale=0.05)
        assert comparison.router_floor_ok
        assert comparison.floor_violations() == []
        assert comparison.backend_labels == (
            "rowstore-oltp", "columnstore-dss", "elastic-serverless"
        )
        routed = comparison.sweeps["router:rule-based"]
        assert routed.backend == "router:rule-based"
        assert len(routed.points) == 4


class TestSweepReportRouting:
    def test_report_aggregates_and_journals_decisions(self, tmp_path):
        configs = on_backend(
            [ExperimentConfig(workload="tpch", scale_factor=10, duration=3.0,
                              allocation=ResourceAllocation(logical_cores=c))
             for c in (8, 32)],
            router="rule-based",
        )
        cache = ResultCache(tmp_path)
        report = run_supervised(configs, cache=cache)
        assert sum(report.router_decisions.values()) > 0
        assert set(report.router_decisions) <= {
            "rowstore-oltp", "columnstore-dss", "elastic-serverless"
        }
        journal_lines = [
            json.loads(line)
            for line in (tmp_path / JOURNAL_BASENAME).read_text().splitlines()
        ]
        route_notes = [l for l in journal_lines if l.get("event") == "route"]
        assert len(route_notes) == 2
        assert all(n["policy"] == "rule-based" for n in route_notes)

    def test_cache_hits_still_counted(self, tmp_path):
        config = ExperimentConfig(workload="tpch", scale_factor=10,
                                  duration=3.0, router="rule-based")
        cache = ResultCache(tmp_path)
        first = run_supervised([config], cache=cache)
        second = run_supervised([config], cache=cache)
        assert second.cache_hits == 1
        assert second.router_decisions == first.router_decisions
