"""Text rendering of plan trees (reproduces the paper's Fig 7 artifacts).

The renderer mimics SQL Server's showplan text: one operator per line,
indentation for children, ``<=>`` marking parallel operators (the paper's
"double arrow symbol"), and cardinality/cost annotations.
"""

from __future__ import annotations

from typing import List

from repro.engine.plan.operators import PlanNode


def _format_rows(rows: float) -> str:
    if rows >= 1e9:
        return f"{rows / 1e9:.2f}B rows"
    if rows >= 1e6:
        return f"{rows / 1e6:.2f}M rows"
    if rows >= 1e3:
        return f"{rows / 1e3:.1f}K rows"
    return f"{rows:.0f} rows"


def render_plan(plan: PlanNode, show_costs: bool = False) -> str:
    """Render a plan tree as indented showplan-style text.

    >>> from repro.engine.plan.operators import OpKind, PlanNode
    >>> leaf = PlanNode(op=OpKind.TABLE_SCAN, table="part", rows_out=10)
    >>> print(render_plan(leaf))
    --> Table Scan [part] (10 rows)
    """
    lines: List[str] = []
    _render_into(plan, depth=0, lines=lines, show_costs=show_costs)
    return "\n".join(lines)


def _render_into(node: PlanNode, depth: int, lines: List[str], show_costs: bool) -> None:
    arrow = "<=>" if node.parallel else "-->"
    indent = "    " * depth
    label = node.op.value
    if node.table:
        label += f" [{node.table}]"
    annotations = [_format_rows(node.rows_out)]
    if node.detail:
        annotations.append(node.detail)
    if show_costs:
        annotations.append(f"cost={node.cpu_cost:.3g}")
        if node.memory_bytes:
            annotations.append(f"mem={node.memory_bytes / 2**20:.1f}MiB")
    lines.append(f"{indent}{arrow} {label} ({', '.join(annotations)})")
    for child in node.children:
        _render_into(child, depth + 1, lines, show_costs)


def plan_diff_summary(a: PlanNode, b: PlanNode) -> str:
    """Summarize the structural differences between two plans, in the
    style of the paper's §7 discussion of Q20's serial vs parallel plans:
    operator parallelism, join count, and join algorithms."""
    from repro.engine.plan.operators import OpKind

    def join_algos(plan: PlanNode) -> List[str]:
        names = []
        for node in plan.walk():
            if node.op in (OpKind.HASH_JOIN, OpKind.NESTED_LOOPS, OpKind.MERGE_JOIN):
                names.append(node.op.value)
        return names

    lines = [
        f"plan A: {a.join_count()} joins [{', '.join(join_algos(a)) or 'none'}]"
        f"{' (parallel)' if a.is_parallel_plan() else ' (serial)'}",
        f"plan B: {b.join_count()} joins [{', '.join(join_algos(b)) or 'none'}]"
        f"{' (parallel)' if b.is_parallel_plan() else ' (serial)'}",
        f"same shape: {a.signature() == b.signature()}",
    ]
    return "\n".join(lines)
