"""Analyses over sweep measurements: knees, sufficient cache sizes,
speedups, and the nonlinear-response comparison of Fig 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def speedup_series(values: Sequence[float], baseline: float) -> List[float]:
    """Each value relative to *baseline* (Fig 6/Fig 8 convention:
    baseline elapsed / value elapsed, i.e. >1 means faster)."""
    if baseline <= 0:
        raise ConfigurationError("baseline must be positive")
    return [baseline / v if v > 0 else float("inf") for v in values]


def relative_performance(values: Sequence[float]) -> List[float]:
    """Values normalized to the last entry (full-allocation reference)."""
    if not values:
        return []
    reference = values[-1]
    if reference <= 0:
        raise ConfigurationError("reference performance must be positive")
    return [v / reference for v in values]


def sufficient_allocation(
    sizes: Sequence[float],
    performance: Sequence[float],
    threshold: float,
) -> Optional[float]:
    """Smallest size whose performance is >= threshold x full-allocation
    performance — the Table 4 statistic.

    The paper reads this off monotone-ish curves; measurement noise can
    produce local dips, so the *first* size meeting the threshold is
    returned (as the paper's table does).
    """
    if len(sizes) != len(performance) or not sizes:
        raise ConfigurationError("sizes and performance must align")
    if not 0 < threshold <= 1:
        raise ConfigurationError("threshold must be in (0, 1]")
    relative = relative_performance(list(performance))
    for size, value in zip(sizes, relative):
        if value >= threshold:
            return size
    return None


@dataclass(frozen=True)
class Knee:
    """A detected knee: the allocation where marginal benefit collapses."""

    x: float
    curvature: float


def find_knee(xs: Sequence[float], ys: Sequence[float]) -> Knee:
    """Locate the knee of a saturating curve (max distance to chord).

    Uses the "kneedle"-style construction: normalize the curve, then find
    the point farthest above the straight line joining the endpoints.
    Works for both rising (performance vs cache) and falling (MPKI vs
    cache) curves.
    """
    if len(xs) != len(ys) or len(xs) < 3:
        raise ConfigurationError("need at least three points")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    x_norm = (x - x.min()) / (x.max() - x.min() or 1.0)
    span = y.max() - y.min()
    if span == 0:
        return Knee(x=float(x[0]), curvature=0.0)
    y_norm = (y - y.min()) / span
    if y_norm[0] > y_norm[-1]:
        y_norm = 1.0 - y_norm  # falling curve -> rising
    distance = y_norm - x_norm
    index = int(np.argmax(distance))
    return Knee(x=float(x[index]), curvature=float(distance[index]))


@dataclass(frozen=True)
class LinearComparison:
    """Fig 5's point: the bandwidth a linear model overestimates.

    ``linear_prediction(q)`` inverts the straight line through the origin
    and the full-allocation point; ``actual_requirement(q)`` interpolates
    the measured curve.  ``savings_fraction`` is the paper's "~20%
    reduction" statistic evaluated at ``probe_performance``.
    """

    limits: Tuple[float, ...]
    performance: Tuple[float, ...]
    probe_performance: float
    linear_bandwidth: float
    actual_bandwidth: float

    @property
    def savings_fraction(self) -> float:
        if self.linear_bandwidth <= 0:
            return 0.0
        return 1.0 - self.actual_bandwidth / self.linear_bandwidth


def linear_response_comparison(
    limits: Sequence[float],
    performance: Sequence[float],
    probe_fraction: float = 0.95,
) -> LinearComparison:
    """Compare the measured QPS-vs-bandwidth curve with a linear model.

    *limits* must be ascending; the linear model is the line from the
    origin through the highest-limit measurement.  The probe performance
    is ``probe_fraction`` of the maximum measured performance.
    """
    if len(limits) != len(performance) or len(limits) < 2:
        raise ConfigurationError("need at least two aligned points")
    xs = np.asarray(limits, dtype=float)
    ys = np.asarray(performance, dtype=float)
    if not np.all(np.diff(xs) > 0):
        raise ConfigurationError("limits must be strictly ascending")
    slope = ys[-1] / xs[-1]
    probe = probe_fraction * float(ys.max())
    linear_bw = probe / slope if slope > 0 else float("inf")
    actual_bw = float(np.interp(probe, ys, xs))
    return LinearComparison(
        limits=tuple(float(v) for v in xs),
        performance=tuple(float(v) for v in ys),
        probe_performance=probe,
        linear_bandwidth=linear_bw,
        actual_bandwidth=actual_bw,
    )


def diminishing_returns(xs: Sequence[float], ys: Sequence[float]) -> bool:
    """True when marginal gains shrink along the curve (Fig 5's shape):
    the average slope of the second half is below the first half's."""
    if len(xs) != len(ys) or len(xs) < 3:
        raise ConfigurationError("need at least three points")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    mid = len(x) // 2
    first = (y[mid] - y[0]) / (x[mid] - x[0])
    second = (y[-1] - y[mid]) / (x[-1] - x[mid])
    return second < first


def wait_ratio_table(
    small_sf_waits: Dict, large_sf_waits: Dict
) -> Dict[str, float]:
    """Table 3: per-wait-type ratios, large SF relative to small SF."""
    ratios: Dict[str, float] = {}
    for wait_type, small_value in small_sf_waits.items():
        large_value = large_sf_waits.get(wait_type, 0.0)
        name = getattr(wait_type, "value", str(wait_type))
        if small_value > 0:
            ratios[name] = large_value / small_value
        else:
            ratios[name] = float("inf") if large_value > 0 else float("nan")
    return ratios
