"""Fig 7: Q20's serial vs parallel query plans at SF=300."""

from repro.core.figures import fig7_q20_plans


def test_fig7_q20_plan_adaptation(benchmark, emit):
    result = benchmark(fig7_q20_plans)
    emit("Fig 7a — Q20 serial plan (MAXDOP=1), TPC-H SF=300",
         result.serial_plan_text)
    emit("Fig 7b — Q20 parallel plan (MAXDOP=32), TPC-H SF=300",
         result.parallel_plan_text)
    emit("Fig 7 — structural differences", result.diff_summary)
    # The paper's two observations:
    # 1. the MAXDOP=32 plan uses parallel implementations throughout;
    # 2. join algorithms differ — hash join for part in the serial plan,
    #    parallel nested loops in the MAXDOP=32 plan.
    assert result.serial_uses_hash_for_part
    assert result.parallel_uses_nlj_for_part
