"""Fleet resilience: replicated shard groups, failover, and hedging.

The paper characterizes how a *single* engine degrades when resources
are taken away; the fleet layer models the complementary production
question — how a group of engine replicas stays available when a whole
replica browns out, partitions, or crashes:

* :mod:`repro.fleet.replicas` — :class:`ReplicaGroup`: N
  :class:`~repro.engine.engine.SqlEngine` instances on one simulated
  clock with primary/secondary roles, synchronous quorum WAL shipping
  over the existing LSN stream, fencing, and checkpoint-based catch-up
  on rejoin;
* :mod:`repro.fleet.health` — heartbeat-driven failure detection
  (phi-accrual-style suspicion over sim-clock inter-arrival gaps, fed by
  per-replica service times) driving automatic promotion;
* :mod:`repro.fleet.hedging` — tail-tolerant reads: hedge after a
  p95-based delay, per-tenant retry-budget token buckets, and
  brownout/queue-depth-aware shedding.

The seeded chaos scheduler that exercises all of it lives in
:mod:`repro.faults.chaos`.
"""

from repro.fleet.health import FailoverController, HeartbeatMonitor
from repro.fleet.hedging import HedgedReader, RetryBudget
from repro.fleet.replicas import (
    ROLE_PRIMARY,
    ROLE_SECONDARY,
    Replica,
    ReplicaGroup,
)

__all__ = [
    "FailoverController",
    "HeartbeatMonitor",
    "HedgedReader",
    "Replica",
    "ReplicaGroup",
    "RetryBudget",
    "ROLE_PRIMARY",
    "ROLE_SECONDARY",
]
