"""Learned sensitivity surrogate: interactive what-if serving.

Every question the harness answers ("how does throughput respond to
cores / LLC / bandwidth / MAXDOP / grant?") historically cost a full
simulation sweep.  This package turns the content-addressed
:class:`~repro.core.resultcache.ResultCache` — which every sweep has been
filling since PR 1 — into a training corpus for a dependency-light
predictor, and uses that predictor three ways:

* :mod:`repro.surrogate.corpus` harvests (features → metrics) pairs from
  cache entries and attempt journals;
* :mod:`repro.surrogate.model` fits a deterministic numpy ridge + k-NN
  ensemble with per-prediction uncertainty and a Q-error report;
* :mod:`repro.surrogate.planner` runs *adaptive* sweeps — simulate only
  the high-uncertainty and knee-adjacent grid points, backfill the rest
  from the surrogate with explicit ``source="predicted"`` provenance;
* :mod:`repro.surrogate.serve` answers sizing queries at interactive
  latency from cache-or-surrogate, falling back to simulation.

Provenance is the load-bearing invariant: a predicted point is never
written to the result cache (the cache holds simulated truth only), and
every prediction carries ``Measurement.source == "predicted"`` plus the
model's uncertainty so figures and reports can distinguish it.
"""

from repro.surrogate.corpus import Corpus, CorpusEntry, HarvestStats, harvest
from repro.surrogate.features import (
    FEATURE_NAMES,
    features_for_config,
    features_for_measurement,
)
from repro.surrogate.model import SurrogateModel, q_error
from repro.surrogate.planner import (
    AdaptivePlan,
    AdaptiveSweepResult,
    plan_adaptive_sweep,
    run_adaptive_sweep,
)
from repro.surrogate.serve import WhatIfAnswer, WhatIfServer

__all__ = [
    "AdaptivePlan",
    "AdaptiveSweepResult",
    "Corpus",
    "CorpusEntry",
    "FEATURE_NAMES",
    "HarvestStats",
    "SurrogateModel",
    "WhatIfAnswer",
    "WhatIfServer",
    "features_for_config",
    "features_for_measurement",
    "harvest",
    "plan_adaptive_sweep",
    "q_error",
    "run_adaptive_sweep",
]
