"""Core performance model: CPI, turbo frequency scaling, and SMT yield.

The model converts a thread's *characteristics* (base CPI, cache miss rate,
memory-level parallelism) into an effective instruction rate per core, and
an allocation *shape* (how many physical cores, how many with both hardware
threads populated) into an aggregate capacity in core-equivalents.

Hyper-threading is modelled as a throughput multiplier on a physical core
that has both hardware threads running:

* the *gain* term scales with the fraction of cycles a single thread would
  stall on memory — stalled issue slots are exactly what the sibling
  thread can fill;
* the *interference* term scales with the compute-bound fraction — two
  compute-bound threads contend for issue ports and L1/L2 capacity.

This reproduces the paper's §4 observation that hyper-threading helps
I/O- and memory-intensive workloads but can hurt compute-intensive
in-memory analytics (before even counting the parallel-plan overheads the
executor adds on top).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.topology import AllocationShape


@dataclass(frozen=True)
class ThreadCharacteristics:
    """Execution characteristics of an average thread of a workload.

    Attributes:
        cpi_base: cycles per instruction with a perfect LLC.
        mpki: last-level-cache misses per kilo-instruction (from the MRC).
        miss_penalty_cycles: average DRAM access penalty in core cycles.
        mlp: memory-level parallelism — how many misses overlap, which
            divides the effective penalty.
    """

    cpi_base: float
    mpki: float
    miss_penalty_cycles: float = 180.0
    mlp: float = 2.5

    def cpi(self) -> float:
        """Effective cycles per instruction including LLC miss stalls."""
        return self.cpi_base + (self.mpki / 1000.0) * self.miss_penalty_cycles / self.mlp

    def memory_stall_fraction(self) -> float:
        """Fraction of execution cycles stalled on LLC misses."""
        total = self.cpi()
        if total <= 0:
            raise ConfigurationError("non-positive CPI")
        return ((self.mpki / 1000.0) * self.miss_penalty_cycles / self.mlp) / total


@dataclass(frozen=True)
class SmtModel:
    """Hyper-threading throughput model.

    ``multiplier(stall)`` is the combined throughput of a physical core
    running two copies of a thread, relative to one copy running alone.
    """

    #: Calibrated jointly against §4: TPC-H's HT detriment at small scale
    #: factors (perf16/perf32 = 1.72 at SF=10), ASDB's modest 5-6.8% HT
    #: gain, and TPC-E's 16.7-24.2% gain.  multiplier(s) = 0.57 + 0.81*s,
    #: saturating at max_multiplier (two hardware threads cannot more than
    #: fill the pipeline).
    gain_span: float = 0.38
    interference_span: float = 0.43
    max_multiplier: float = 1.25

    def multiplier(self, memory_stall_fraction: float) -> float:
        stall = min(1.0, max(0.0, memory_stall_fraction))
        gain = self.gain_span * stall
        interference = self.interference_span * (1.0 - stall)
        return min(self.max_multiplier, max(0.5, 1.0 + gain - interference))


@dataclass(frozen=True)
class CpuModel:
    """Frequency and IPC model for one processor family.

    The default values describe the Xeon E5-2620 v4 in the paper's testbed:
    nominal 2.1 GHz, single-core turbo 3.0 GHz.  All-core turbo is modelled
    by linear interpolation down to ``allcore_turbo_hz``.
    """

    nominal_hz: float = 2.1e9
    turbo_hz: float = 3.0e9
    allcore_turbo_hz: float = 2.3e9
    smt: SmtModel = SmtModel()

    def frequency(self, active_physical_cores: int, total_physical_cores: int) -> float:
        """Clock rate when *active_physical_cores* cores are busy."""
        if active_physical_cores < 0 or total_physical_cores < 1:
            raise ConfigurationError("bad core counts")
        if active_physical_cores <= 1:
            return self.turbo_hz
        span = self.turbo_hz - self.allcore_turbo_hz
        fraction = (active_physical_cores - 1) / max(1, total_physical_cores - 1)
        return self.turbo_hz - span * min(1.0, fraction)

    def single_thread_ips(
        self,
        chars: ThreadCharacteristics,
        active_physical_cores: int,
        total_physical_cores: int,
    ) -> float:
        """Instructions/sec for one thread alone on a physical core."""
        freq = self.frequency(active_physical_cores, total_physical_cores)
        return freq / chars.cpi()

    def capacity_core_equivalents(
        self, chars: ThreadCharacteristics, shape: AllocationShape
    ) -> float:
        """Aggregate compute capacity of an allocation, in units of one
        single-threaded physical core running this workload.

        A physical core with both hardware threads allocated contributes
        the SMT multiplier; a core with a single thread contributes 1.
        """
        single = shape.physical_cores - shape.smt_paired_cores
        paired = shape.smt_paired_cores
        multiplier = self.smt.multiplier(chars.memory_stall_fraction())
        return single + paired * multiplier

    def aggregate_ips(
        self, chars: ThreadCharacteristics, shape: AllocationShape, total_physical_cores: int
    ) -> float:
        """Peak aggregate instructions/sec for an allocation shape."""
        per_core = self.single_thread_ips(
            chars, shape.physical_cores, total_physical_cores
        )
        return per_core * self.capacity_core_equivalents(chars, shape)
