"""Content-addressed on-disk cache of experiment results.

Every figure and table in the paper is a grid of independent
``(workload, allocation)`` experiments, and several artifacts share grid
points (the LLC sweep feeds Fig 2, Fig 3, and Table 4; the full-allocation
runs feed Fig 4 and the sensitivity matrix).  Re-running a figure should
therefore cost one disk read per already-measured point, not a fresh
simulation.

The cache key is a SHA-256 digest of a *canonical* rendering of the frozen
:class:`~repro.core.experiment.ExperimentConfig` — every field, including
the seed, the machine spec, and workload kwargs — concatenated with a
calibration token.  The token folds in the package version, the on-disk
format version, and a digest of every constant in :mod:`repro.calibration`,
so retuning the model (or changing the storage format) invalidates every
stale entry automatically instead of silently serving measurements from an
older model.  Entries are pickled :class:`~repro.core.measurement.Measurement`
objects, written atomically (temp file + rename) so a crashed or
concurrent run can never leave a torn entry behind.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.measurement import Measurement
from repro.errors import ConfigurationError

log = logging.getLogger(__name__)

#: Bump when the serialized Measurement layout changes incompatibly.
#: v2: Measurement grew the grant counters and entries carry a sha256
#: integrity header, so v1 entries are orphaned via the token.
#: v3: Measurement grew backend/router provenance, and ExperimentConfig
#: grew the backend/router fields (which also enter the config digest —
#: cross-backend runs can never collide on cache entries).
#: v4: Measurement grew fleet-resilience fields (failovers, hedges,
#: unavailable_seconds, fleet_summary) and router_reroutes, and
#: StorageBrownout grew latency_factor (which enters fault-carrying
#: config digests); v3 pickles lack the new attributes.
#: v5: Measurement grew surrogate provenance (source,
#: predicted_uncertainty); v4 pickles lack the new attributes.
#: v6: Measurement grew open-loop / fleet-SLO observables (offered_tps,
#: arrival_sheds, sheds_by_tenant) and ExperimentConfig grew the
#: ``arrival`` spec (which enters the config digest — an open-loop point
#: can never alias the closed-loop run of the same allocation); v5
#: pickles lack the new attributes.
CACHE_FORMAT_VERSION = 6

#: Environment variable consulted for a default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _canonical(value: Any) -> Any:
    """Reduce *value* to JSON-serializable primitives, deterministically.

    Dataclasses become ``[class name, {field: value}]`` so that two
    different config types can never collide; enums carry their class and
    member name; floats go through ``repr`` (shortest round-trip form, so
    equal floats always render identically).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return [type(value).__name__, fields]
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.name]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if isinstance(value, float):
        return repr(value)
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise ConfigurationError(
        f"cannot build a stable cache key from {type(value).__name__!r}"
    )


def canonical_json(value: Any) -> str:
    """The canonical string rendering used for hashing."""
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))


@functools.lru_cache(maxsize=1)
def calibration_token() -> str:
    """A digest of everything that makes measurements comparable.

    Covers the package version, the cache format version, and every
    module-level constant in :mod:`repro.calibration` (the model's tuned
    parameters).  Any recalibration changes the token and orphans old
    entries rather than serving them.

    Memoized: the constants are process-lifetime-stable, yet this used to
    re-walk and re-hash the whole calibration module once per cache
    construction and once per journal digest.  Code that mutates
    calibration constants at runtime (tests, notebooks) must call
    ``calibration_token.cache_clear()`` afterwards.
    """
    import repro
    import repro.calibration as calibration

    payload = canonical_json(
        {
            "version": repro.__version__,
            "format": CACHE_FORMAT_VERSION,
            "calibration": calibration.constants(),
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def config_digest(config: Any, token: str) -> str:
    """Content address of one experiment config under a calibration token."""
    payload = f"{token}\n{canonical_json(config)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_cache_dir() -> Optional[Path]:
    """The cache directory implied by the environment, if any.

    Returns ``$REPRO_CACHE_DIR`` when set, else None — caching is opt-in
    so that library calls and tests stay hermetic by default.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else None


class ResultCache:
    """A directory of pickled measurements addressed by config digest."""

    def __init__(self, directory: os.PathLike, token: Optional[str] = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.token = token if token is not None else calibration_token()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.store_errors = 0
        self.corrupt = 0

    def digest(self, config: Any) -> str:
        return config_digest(config, self.token)

    def path_for(self, config: Any) -> Path:
        return self.path_for_digest(self.digest(config))

    def path_for_digest(self, digest: str) -> Path:
        return self.directory / f"{digest}.pkl"

    def get(self, config: Any) -> Optional[Measurement]:
        """The cached measurement for *config*, or None.

        Every entry carries a sha256 of its pickle payload; a header
        mismatch (bit rot, torn write that still parses, manual edits)
        or any unpickling failure counts as a miss and the damaged file
        is *quarantined* — renamed to ``.corrupt-<name>`` next to the
        cache rather than deleted — so the grid point silently re-runs
        while the evidence survives for diagnosis.
        """
        return self.get_by_digest(self.digest(config))

    def get_by_digest(self, digest: str) -> Optional[Measurement]:
        """:meth:`get` for callers that already computed the digest.

        The sweep supervisor hashes every config exactly once (the digest
        doubles as the journal key), so probing by digest avoids a second
        canonical-JSON + sha256 pass per grid point.
        """
        path = self.path_for_digest(digest)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        try:
            header, _, payload = blob.partition(b"\n")
            if header != hashlib.sha256(payload).hexdigest().encode("ascii"):
                raise ValueError("cache entry checksum mismatch")
            measurement = pickle.loads(payload)
            if not isinstance(measurement, Measurement):
                # A checksum-valid pickle of the wrong type (e.g. a file
                # swapped between caches) is just as unusable as torn bytes.
                raise ValueError(
                    f"cache entry holds {type(measurement).__name__}, "
                    "not Measurement"
                )
        except Exception as exc:
            # Corrupt bytes can raise almost anything (UnpicklingError,
            # EOFError, ValueError, AttributeError, ...); any of them
            # just means the entry is unusable.
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return measurement

    def get_many(
        self, configs: Iterable[Any]
    ) -> List[Tuple[str, Optional[Measurement]]]:
        """Batched pre-dispatch probe: ``(digest, hit-or-None)`` per config.

        One pass resolves every already-measured grid point before any
        worker process is touched, and hands the supervisor the digests
        it needs anyway for journaling and delta-dispatch — no config is
        ever hashed twice.

        Robustness contract: one bad entry is *that key's* miss, never
        the batch's failure.  A corrupt or quarantined entry (torn
        write, chaos-killed worker mid-``put``, wrong-type payload) is
        already downgraded by :meth:`get_by_digest`; anything it still
        manages to raise is caught here per key so a thousand-point
        probe cannot be aborted by one damaged file.
        """
        results: List[Tuple[str, Optional[Measurement]]] = []
        for config in configs:
            digest = self.digest(config)
            try:
                hit = self.get_by_digest(digest)
            except Exception:
                self.misses += 1
                hit = None
            results.append((digest, hit))
        return results

    def _quarantine(self, path: Path, exc: BaseException) -> None:
        self.corrupt += 1
        target = path.with_name(f".corrupt-{path.name}")
        try:
            os.replace(path, target)
            log.warning(
                "cache entry %s is corrupt (%s: %s); quarantined as %s — "
                "the point will re-run",
                path.name, type(exc).__name__, exc, target.name,
            )
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            log.warning(
                "cache entry %s is corrupt (%s: %s) and could not be "
                "quarantined; removed", path.name, type(exc).__name__, exc,
            )

    def put(self, config: Any, measurement: Measurement,
            digest: Optional[str] = None) -> Optional[Path]:
        """Store atomically: write a temp file, then rename into place.

        *digest*, when given, must be ``self.digest(config)`` — callers
        that already hold the digest (the supervisor) skip re-hashing.

        The cache is an accelerator, not a durability contract: a disk
        that fills up or a directory that loses write permission mid-sweep
        must not throw away the measurement that was just computed.  Any
        ``OSError`` (ENOSPC, EACCES, read-only remount, ...) degrades to a
        logged warning and ``None`` — the caller keeps its in-memory
        result, the sweep keeps going.  Pickling errors still raise: an
        unpicklable measurement is a programming bug, not an environment
        hazard.
        """
        path = (self.path_for(config) if digest is None
                else self.path_for_digest(digest))
        tmp_name: Optional[str] = None
        payload = pickle.dumps(measurement, protocol=pickle.HIGHEST_PROTOCOL)
        checksum = hashlib.sha256(payload).hexdigest().encode("ascii")
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".pkl"
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(checksum + b"\n" + payload)
            os.replace(tmp_name, path)
        except OSError as exc:
            self._cleanup_tmp(tmp_name)
            self.store_errors += 1
            log.warning(
                "could not store cache entry %s (%s); continuing uncached",
                path.name, exc,
            )
            return None
        except BaseException:
            self._cleanup_tmp(tmp_name)
            raise
        self.stores += 1
        return path

    @staticmethod
    def _cleanup_tmp(tmp_name: Optional[str]) -> None:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def iter_entries(self) -> Iterator[Tuple[str, Measurement]]:
        """Bulk scan: yield every readable ``(digest, measurement)`` pair.

        The corpus harvester (:mod:`repro.surrogate.corpus`) walks the
        whole cache to turn past sweeps into training data, so this must
        survive whatever a long campaign left behind: already-quarantined
        ``.corrupt-*`` files are counted (``quarantined_entries()``) and
        skipped, and an entry that turns out to be damaged mid-scan is
        quarantined by :meth:`get_by_digest` and skipped — one bad file
        is never the scan's failure.  Entries are yielded in sorted
        digest order so every harvest of the same cache sees the same
        sequence regardless of directory enumeration order.
        """
        for path in sorted(self._entry_paths()):
            digest = path.stem
            try:
                measurement = self.get_by_digest(digest)
            except Exception:       # pragma: no cover - get_by_digest guards
                self.misses += 1
                continue
            if measurement is not None:
                yield digest, measurement

    def quarantined_entries(self) -> int:
        """How many ``.corrupt-*`` quarantine files sit in the directory."""
        return sum(1 for _ in self.directory.glob(".corrupt-*"))

    def _entry_paths(self):
        """Live entries only — ``.corrupt-*`` quarantine files and
        ``.tmp-*`` staging files share the directory but are not
        entries."""
        return (p for p in self.directory.glob("*.pkl")
                if not p.name.startswith("."))

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_errors": self.store_errors,
            "corrupt": self.corrupt,
        }
