"""What-if serving bench: adaptive sweeps and interactive answer latency.

Measures the three perf claims of the surrogate subsystem and emits one
JSON document (written to ``BENCH_whatif.json`` at the repo root):

* ``corpus`` — harvest + closed-form fit over a seeded training grid,
  with the model's leave-one-out Q-error report (``max(pred/actual,
  actual/pred)``, so 1.0 is perfect);
* ``adaptive`` — a target grid swept exhaustively (ground truth) and
  then adaptively with the surrogate (anchors + MRC-knee points +
  high-uncertainty points simulated, the rest predicted).  Reports the
  wall-clock ``speedup`` — including the planner's own prediction
  overhead — and the Q-error of every *predicted* point against the
  exhaustive truth at the same grid index;
* ``serve`` — a :class:`~repro.surrogate.serve.WhatIfServer` answering a
  mixed query stream (exact cached points plus off-grid what-ifs), with
  per-source p50/p99 latency in milliseconds.  The interactive claim is
  gated on cache/surrogate answers only; simulation fallbacks are
  counted but excluded (they are the slow path by design).

Thresholds live in :func:`check_report`; ``check_perf_smoke.py --whatif``
re-applies them in CI.
"""

import json
import statistics
import tempfile
import time
from pathlib import Path

from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import ResultCache
from repro.core.runner import run_supervised
from repro.core.sweeps import run_sweep
from repro.surrogate import SurrogateModel, WhatIfServer, harvest, q_error
from repro.surrogate.planner import run_adaptive_sweep

try:
    from benchmarks.bench_runner_scaling import effective_cores
except ImportError:  # executed as a script: benchmarks/ is sys.path[0]
    from bench_runner_scaling import effective_cores

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Training grid (cached, harvested, fitted).
TRAIN_CORES = (1, 2, 4, 8, 16, 32)
TRAIN_LLC_MB = (2, 8, 16, 24, 32, 40)

#: Target grid for the adaptive-vs-exhaustive comparison: off the
#: training lattice on both axes, so predictions interpolate rather
#: than replay memorized points.
TARGET_CORES = (2, 8, 16)
TARGET_LLC_MB = (4, 12, 20, 36)

#: Simulated seconds per grid point (wall cost scales with this).
DURATION = 1.0

#: Serve-phase passes over the mixed query stream.
SERVE_PASSES = 5


def _config(cores, llc_mb):
    return ExperimentConfig(
        workload="asdb", scale_factor=2000,
        allocation=ResourceAllocation(logical_cores=cores, llc_mb=llc_mb),
        duration=DURATION, seed=0,
    )


def _grid(cores_axis, llc_axis):
    return [_config(c, l) for c in cores_axis for l in llc_axis]


def _percentile_ms(latencies, fraction):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return round(ordered[index] * 1000.0, 3)


def build_corpus(cache):
    """Seed the training grid into *cache*, harvest, fit, evaluate."""
    start = time.perf_counter()
    run_supervised(_grid(TRAIN_CORES, TRAIN_LLC_MB), cache=cache)
    seed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    corpus = harvest(cache)
    model = SurrogateModel().fit(corpus)
    fit_seconds = time.perf_counter() - start
    loo = model.q_error_report(corpus)
    return model, {
        "entries": len(corpus),
        "harvest_stats": corpus.stats.summary(),
        "seed_sweep_seconds": round(seed_seconds, 3),
        "harvest_and_fit_seconds": round(fit_seconds, 4),
        "loo_q_error_overall": {k: round(v, 4)
                                for k, v in loo["overall"].items()},
        "loo_q_error_primary": {k: round(v, 4)
                                for k, v in loo["primary_metric"].items()},
    }


def bench_adaptive(model):
    """Exhaustive vs surrogate-guided sweep of the same target grid.

    Both runs get their own empty cache so neither inherits the other's
    (or the training phase's) entries: the timing compares a cold
    exhaustive sweep against a cold adaptive one, and the exhaustive
    results double as ground truth for the predicted points' Q-error.
    """
    grid = _grid(TARGET_CORES, TARGET_LLC_MB)

    exhaustive_cache = ResultCache(tempfile.mkdtemp(prefix="whatif-exh-"))
    start = time.perf_counter()
    truth = run_sweep(grid, cache=exhaustive_cache)
    exhaustive_seconds = time.perf_counter() - start

    adaptive_cache = ResultCache(tempfile.mkdtemp(prefix="whatif-ada-"))
    start = time.perf_counter()
    result = run_adaptive_sweep(grid, model, cache=adaptive_cache)
    adaptive_seconds = time.perf_counter() - start

    errors = sorted(
        q_error(result.measurements[i].primary_metric,
                truth[i].primary_metric)
        for i in result.plan.predict
    )
    return {
        "grid_points": len(grid),
        "simulated_points": len(result.plan.simulate),
        "predicted_points": len(result.plan.predict),
        "plan": result.plan.summary(),
        "exhaustive_seconds": round(exhaustive_seconds, 3),
        "adaptive_seconds": round(adaptive_seconds, 3),
        "speedup": round(exhaustive_seconds / adaptive_seconds, 2),
        "predicted_q_error_median": round(statistics.median(errors), 4),
        "predicted_q_error_max": round(max(errors), 4),
    }


def bench_serve(model, cache):
    """Latency of the what-if answer path over a mixed query stream."""
    cached_queries = _grid(TRAIN_CORES[::2], TRAIN_LLC_MB[::2])
    whatif_queries = _grid((2, 8), (12, 20, 36))
    server = WhatIfServer(model=model, cache=cache)
    for _ in range(SERVE_PASSES):
        server.answer_many(cached_queries + whatif_queries)
    interactive = (server.stats.latencies.get("cache", [])
                   + server.stats.latencies.get("surrogate", []))
    return {
        "queries": SERVE_PASSES * (len(cached_queries) + len(whatif_queries)),
        "sources": server.stats.summary(),
        "interactive_answers": len(interactive),
        "p50_ms": _percentile_ms(interactive, 0.50),
        "p99_ms": _percentile_ms(interactive, 0.99),
        "simulated_fallbacks": server.stats.simulated,
    }


def run_whatif_study():
    cache = ResultCache(tempfile.mkdtemp(prefix="whatif-train-"))
    model, corpus_report = build_corpus(cache)
    return {
        "bench": "whatif",
        "effective_cores": effective_cores(),
        "corpus": corpus_report,
        "adaptive": bench_adaptive(model),
        "serve": bench_serve(model, cache),
    }


def check_report(report):
    """Acceptance bars for the what-if subsystem (the PR's perf claim)."""
    adaptive = report["adaptive"]
    assert adaptive["speedup"] >= 1.5, (
        f"adaptive sweep only {adaptive['speedup']}x faster than "
        f"exhaustive (floor 1.5x)"
    )
    assert adaptive["predicted_q_error_median"] <= 1.15, (
        f"predicted points' median Q-error "
        f"{adaptive['predicted_q_error_median']} exceeds 1.15"
    )
    corpus = report["corpus"]
    assert corpus["loo_q_error_overall"]["median"] <= 1.15, (
        f"leave-one-out median Q-error "
        f"{corpus['loo_q_error_overall']['median']} exceeds 1.15"
    )
    serve = report["serve"]
    assert serve["interactive_answers"] > 0, "no cache/surrogate answers"
    assert serve["p99_ms"] < 50.0, (
        f"interactive answer p99 {serve['p99_ms']}ms exceeds 50ms"
    )


def test_whatif(benchmark, emit, duration_scale):
    report = benchmark.pedantic(run_whatif_study, rounds=1, iterations=1)
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_whatif.json").write_text(payload + "\n")
    emit("What-if serving — surrogate accuracy / adaptive speedup / latency",
         payload)


def main():
    report = run_whatif_study()
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_whatif.json").write_text(payload + "\n")
    print(payload)


if __name__ == "__main__":
    main()
