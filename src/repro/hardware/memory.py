"""DRAM capacity and bandwidth model.

The testbed has 64 GB of DDR4 with a theoretical per-socket peak of
68.3 GB/s, but only one third of the memory channels populated, so the
achievable bandwidth is modelled at one third of peak (§3).  The QPI link
between sockets peaks at 32 GB/s and carries remote traffic.

Bandwidth acts as a *throttle*: when the demand implied by the LLC miss
rate exceeds the achievable bandwidth, the instruction rate is scaled down
proportionally.  The paper finds DRAM bandwidth is generally
under-utilized, so the throttle rarely binds — but it must exist for the
"increasing cores + decreasing caches raises bandwidth demand" analysis
(§6, Fig 3) to be honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import CACHE_LINE, gb_per_s, gib


@dataclass(frozen=True)
class DramModel:
    """Capacity plus achievable read+write bandwidth."""

    capacity_bytes: int = gib(64)
    theoretical_bw_per_socket: float = gb_per_s(68.3)
    populated_channel_fraction: float = 1.0 / 3.0
    sockets: int = 2
    qpi_bw: float = gb_per_s(32.0)
    #: Fraction of miss traffic that also generates a dirty writeback.
    writeback_fraction: float = 0.35

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if not 0 < self.populated_channel_fraction <= 1:
            raise ConfigurationError("channel fraction in (0, 1]")

    @property
    def achievable_bw_per_socket(self) -> float:
        return self.theoretical_bw_per_socket * self.populated_channel_fraction

    @property
    def achievable_bw_total(self) -> float:
        return self.achievable_bw_per_socket * self.sockets

    def read_bandwidth_demand(self, misses_per_second: float) -> float:
        """Bytes/sec of DRAM reads implied by an LLC miss rate."""
        if misses_per_second < 0:
            raise ConfigurationError("negative miss rate")
        return misses_per_second * CACHE_LINE

    def write_bandwidth_demand(self, misses_per_second: float) -> float:
        """Bytes/sec of DRAM writes (dirty writebacks) for a miss rate."""
        return self.read_bandwidth_demand(misses_per_second) * self.writeback_fraction

    def total_bandwidth_demand(self, misses_per_second: float) -> float:
        return self.read_bandwidth_demand(misses_per_second) + self.write_bandwidth_demand(
            misses_per_second
        )

    def throttle_factor(self, misses_per_second: float, sockets_used: int) -> float:
        """Scale factor (<= 1) applied to the instruction rate when the
        miss traffic would exceed the achievable bandwidth."""
        if sockets_used < 1:
            raise ConfigurationError("sockets_used must be >= 1")
        available = self.achievable_bw_per_socket * min(sockets_used, self.sockets)
        demand = self.total_bandwidth_demand(misses_per_second)
        if demand <= available or demand == 0:
            return 1.0
        return available / demand
