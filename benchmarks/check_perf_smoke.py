"""Perf-smoke gate: apply the benches' thresholds to their JSON reports.

Run after ``bench_runner_scaling.py`` and ``bench_sim_kernel.py`` have
regenerated ``BENCH_runner_scaling.json`` / ``BENCH_sim_kernel.json``:

    python benchmarks/check_perf_smoke.py \\
        [--baseline-kernel baseline/BENCH_sim_kernel.json]

Two classes of check:

* **Machine-relative ratios** (always applied): dispatch overhead under
  10% of serial sweep cost, vectorized MRC and counter rollups >= 2x,
  compaction observed, warm cache >= 10x.  These are robust across
  machines because both sides of each ratio ran on the same host.
* **Cross-commit regression** (only with ``--baseline-kernel``): the
  fresh ``fig2_mini.points_per_second`` must be at least
  ``PERF_SMOKE_ALLOWED_REGRESSION`` (default 0.8, i.e. no more than a
  20% serial-kernel slowdown) times the committed baseline's.  Skipped
  with a notice when the baseline predates the metric.  Absolute
  wall-clock comparisons are only meaningful between same-class runners;
  loosen the env knob if CI hardware changes.
"""

import argparse
import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from benchmarks import bench_runner_scaling, bench_sim_kernel
except ImportError:  # executed as a script: benchmarks/ is sys.path[0]
    import bench_runner_scaling
    import bench_sim_kernel


def check_regression(fresh, baseline_path, allowed):
    baseline = json.loads(Path(baseline_path).read_text())
    old = baseline.get("fig2_mini", {}).get("points_per_second")
    new = fresh.get("fig2_mini", {}).get("points_per_second")
    if not old or not new:
        print("perf-smoke: baseline lacks fig2_mini.points_per_second; "
              "regression check skipped")
        return
    ratio = new / old
    print(f"perf-smoke: serial kernel {new} vs baseline {old} "
          f"points/s ({ratio:.2f}x, floor {allowed:.2f}x)")
    assert ratio >= allowed, (
        f"serial kernel regressed: {new} points/s is {ratio:.2f}x the "
        f"baseline {old} (floor {allowed:.2f}x)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scaling", default=_REPO_ROOT / "BENCH_runner_scaling.json",
        help="fresh runner-scaling report",
    )
    parser.add_argument(
        "--kernel", default=_REPO_ROOT / "BENCH_sim_kernel.json",
        help="fresh sim-kernel report",
    )
    parser.add_argument(
        "--baseline-kernel", default=None,
        help="committed BENCH_sim_kernel.json to diff points_per_second "
        "against (omit to skip the cross-commit regression check)",
    )
    args = parser.parse_args(argv)

    scaling = json.loads(Path(args.scaling).read_text())
    kernel = json.loads(Path(args.kernel).read_text())

    bench_runner_scaling.check_report(scaling)
    print(f"perf-smoke: dispatch overhead "
          f"{scaling['dispatch_overhead_fraction']:.1%} "
          f"(limit {bench_runner_scaling.DISPATCH_OVERHEAD_LIMIT:.0%}), "
          f"warm cache {scaling['warm_speedup']}x")
    bench_sim_kernel.check_report(kernel)
    print(f"perf-smoke: MRC {kernel['mrc']['speedup']}x, "
          f"counter rollup {kernel['counter_rollup']['speedup']}x, "
          f"{kernel['events']['compactions']} compaction(s)")

    if args.baseline_kernel:
        allowed = float(os.environ.get("PERF_SMOKE_ALLOWED_REGRESSION", "0.8"))
        check_regression(kernel, args.baseline_kernel, allowed)
    print("perf-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
