"""Tests for resource knobs and the analysis helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    diminishing_returns,
    find_knee,
    linear_response_comparison,
    relative_performance,
    speedup_series,
    sufficient_allocation,
    wait_ratio_table,
)
from repro.core.knobs import CORE_SWEEP, LLC_SWEEP_MB, ResourceAllocation
from repro.engine.locks import WaitType
from repro.errors import ConfigurationError
from repro.hardware.machine import Machine
from repro.units import MIB, mb_per_s


class TestResourceAllocation:
    def test_defaults_are_full_machine(self):
        alloc = ResourceAllocation()
        assert alloc.logical_cores == 32
        assert alloc.llc_mb == 40
        assert alloc.effective_max_dop == 32

    def test_maxdop_follows_cores_by_default(self):
        """§4: MAXDOP is limited to the allocated core count."""
        assert ResourceAllocation(logical_cores=8).effective_max_dop == 8

    def test_explicit_maxdop_capped_by_cores(self):
        alloc = ResourceAllocation(logical_cores=4, max_dop=16)
        assert alloc.effective_max_dop == 4

    def test_apply_to_machine(self):
        machine = Machine()
        alloc = ResourceAllocation(
            logical_cores=8, llc_mb=10, read_bw_limit=mb_per_s(500)
        )
        alloc.apply_to(machine)
        assert len(machine.cpuset) == 8
        assert machine.llc.allocated_bytes() == 10 * MIB
        assert machine.ssd.effective_read_bw == mb_per_s(500)

    def test_builders_return_new_objects(self):
        base = ResourceAllocation()
        assert base.with_cores(4).logical_cores == 4
        assert base.with_llc(6).llc_mb == 6
        assert base.with_maxdop(2).max_dop == 2
        assert base.with_grant_percent(5.0).grant_percent == 5.0
        assert base.logical_cores == 32  # original untouched

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceAllocation(logical_cores=0)
        with pytest.raises(ConfigurationError):
            ResourceAllocation(llc_mb=1)
        with pytest.raises(ConfigurationError):
            ResourceAllocation(grant_percent=0.0)

    def test_sweep_constants_shape(self):
        assert CORE_SWEEP == (1, 2, 4, 8, 16, 32)
        assert all(mb % 2 == 0 for mb in LLC_SWEEP_MB)


class TestSpeedupHelpers:
    def test_speedup_series(self):
        assert speedup_series([2.0, 1.0, 0.5], baseline=1.0) == [0.5, 1.0, 2.0]

    def test_relative_performance_normalizes_to_last(self):
        assert relative_performance([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]

    def test_sufficient_allocation_finds_first_crossing(self):
        sizes = [2, 4, 6, 8, 40]
        perf = [0.2, 0.7, 0.92, 0.97, 1.0]
        assert sufficient_allocation(sizes, perf, 0.90) == 6
        assert sufficient_allocation(sizes, perf, 0.95) == 8

    def test_sufficient_allocation_none_if_never_met(self):
        assert sufficient_allocation([2, 4], [0.5, 1.0], 0.99) == 4
        assert sufficient_allocation([2], [1.0], 1.0) == 2

    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2,
                    max_size=20))
    @settings(max_examples=50)
    def test_sufficient_allocation_monotone_in_threshold(self, raw):
        perf = sorted(raw)
        sizes = list(range(len(perf)))
        lo = sufficient_allocation(sizes, perf, 0.5)
        hi = sufficient_allocation(sizes, perf, 0.9)
        if lo is not None and hi is not None:
            assert lo <= hi


class TestKnee:
    def test_knee_of_saturating_curve(self):
        xs = [2, 4, 6, 8, 10, 20, 30, 40]
        ys = [0.1, 0.5, 0.8, 0.9, 0.94, 0.97, 0.99, 1.0]
        knee = find_knee(xs, ys)
        assert 4 <= knee.x <= 10

    def test_knee_of_falling_curve(self):
        xs = [2, 4, 6, 8, 10, 20, 30, 40]
        ys = [100, 40, 15, 8, 6, 4, 3.5, 3.0]  # MPKI-style
        knee = find_knee(xs, ys)
        assert 4 <= knee.x <= 10

    def test_flat_curve_has_zero_curvature(self):
        knee = find_knee([1, 2, 3], [5, 5, 5])
        assert knee.curvature == 0.0

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            find_knee([1, 2], [1, 2])


class TestLinearResponse:
    def test_concave_curve_saves_bandwidth(self):
        limits = [200, 400, 800, 1600, 2500]
        qps = [0.03, 0.055, 0.08, 0.09, 0.092]  # diminishing returns
        cmp = linear_response_comparison(limits, qps)
        assert cmp.actual_bandwidth < cmp.linear_bandwidth
        assert 0 < cmp.savings_fraction < 1

    def test_linear_curve_saves_nothing(self):
        limits = [100.0, 200.0, 400.0]
        qps = [1.0, 2.0, 4.0]
        cmp = linear_response_comparison(limits, qps)
        assert cmp.savings_fraction == pytest.approx(0.0, abs=0.01)

    def test_unsorted_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_response_comparison([2, 1], [1, 2])

    def test_diminishing_returns_detector(self):
        assert diminishing_returns([1, 2, 3, 4], [1, 1.8, 2.2, 2.3])
        assert not diminishing_returns([1, 2, 3, 4], [1, 1.1, 2, 4])


class TestWaitRatios:
    def test_ratio_table(self):
        small = {WaitType.LOCK: 2.0, WaitType.PAGEIOLATCH: 0.1}
        large = {WaitType.LOCK: 0.3, WaitType.PAGEIOLATCH: 7.5}
        ratios = wait_ratio_table(small, large)
        assert ratios["LOCK"] == pytest.approx(0.15)
        assert ratios["PAGEIOLATCH"] == pytest.approx(75.0)

    def test_zero_baseline_gives_inf(self):
        ratios = wait_ratio_table({WaitType.LOCK: 0.0}, {WaitType.LOCK: 1.0})
        assert ratios["LOCK"] == float("inf")
