"""Shared machinery for transactional workloads (TPC-E, ASDB, HTAP-OLTP).

A transactional workload is a weighted mix of :class:`TransactionType`
templates.  Each client is a closed-loop process: draw a type, build a
:class:`~repro.engine.executor.TransactionDemand` against the current
engine state (buffer-pool residency decides PAGEIOLATCH-producing page
reads), execute, record, repeat.

Contention model: a transaction touches the workload's hot rows / hot
pages with per-type probabilities; slots are drawn with a skew toward low
indexes (hot keys).  Slot-array sizes scale with the database scale
factor, which is exactly the Table 3 mechanism: bigger databases spread
conflicts thinner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.engine.catalog import Table
from repro.engine.engine import SqlEngine
from repro.engine.executor import ContentionPoint, TransactionDemand
from repro.engine.locks import WaitType
from repro.errors import WorkloadError
from repro.workloads.base import ThroughputTracker, Workload


@dataclass(frozen=True)
class TransactionType:
    """A template for one class of OLTP transaction."""

    name: str
    weight: float
    instructions: float
    page_accesses: float        # point lookups against the main table
    log_bytes: float
    main_table: str
    lock_probability: float = 0.0
    lock_hold_ms: float = 0.0
    pagelatch_probability: float = 0.0
    pagelatch_hold_ms: float = 0.0
    latch_probability: float = 0.05
    latch_hold_ms: float = 0.05
    dirty_page_writes: float = 0.0

    def __post_init__(self):
        if self.weight <= 0 or self.instructions <= 0:
            raise WorkloadError(f"{self.name}: bad transaction shape")


def _skewed_slot(rng: np.random.Generator, num_slots: int, skew: float = 3.0) -> int:
    """Pick a slot with probability density concentrated at low indexes."""
    return min(num_slots - 1, int(num_slots * (1.0 - rng.power(skew))))


class OltpWorkloadBase(Workload):
    """Common closed-loop client machinery for transactional mixes."""

    primary_kind = "txn"

    def __init__(self, scale_factor: int, clients: int):
        super().__init__(scale_factor)
        if clients < 1:
            raise WorkloadError("need at least one client")
        self.clients = clients

    # subclasses provide the mix ------------------------------------------------

    def transaction_types(self) -> Tuple[TransactionType, ...]:
        raise NotImplementedError

    def hot_lock_rows(self) -> int:
        """Hot row-lock slots; scales with SF (contention dilution —
        the Table 3 mechanism: 3x the customers spread trade/last_trade
        conflicts over 3x the rows)."""
        return max(4, self.scale_factor // 1000)

    def hot_latch_pages(self) -> int:
        """Hot page-latch slots (insert points); grows sublinearly with
        scale — page hot spots depend on tables/partitions more than
        rows."""
        return max(4, int(0.6 * self.scale_factor ** 0.5))

    def engine_parameters(self) -> dict:
        return {
            "hot_lock_rows": self.hot_lock_rows(),
            "hot_latch_pages": self.hot_latch_pages(),
        }

    # client processes -------------------------------------------------------------

    def spawn_clients(
        self, engine: SqlEngine, tracker: ThroughputTracker, until: float
    ) -> List:
        sim = engine.machine.sim
        # One batched start-up: ASDB spawns 128 clients per experiment.
        # RNG streams are still drawn per client, in client order.
        return sim.spawn_many(
            [
                self._client(
                    engine, tracker, until,
                    engine.machine.streams.get(f"{self.name}.client{client_id}"),
                )
                for client_id in range(self.clients)
            ],
            name=f"{self.name}-client",
        )

    def _client(self, engine, tracker, until, rng) -> Generator:
        sim = engine.machine.sim
        types = self.transaction_types()
        weights = np.array([t.weight for t in types], dtype=float)
        weights /= weights.sum()
        while sim.now < until:
            txn_type = types[rng.choice(len(types), p=weights)]
            demand = self.build_demand(engine, txn_type, rng)
            result = yield from engine.run_transaction(demand)
            tracker.record("txn", result.elapsed)
            tracker.record(txn_type.name, result.elapsed)
        return None

    # demand construction ------------------------------------------------------------

    def build_demand(
        self, engine: SqlEngine, txn_type: TransactionType, rng: np.random.Generator
    ) -> TransactionDemand:
        table = self._main_table(engine, txn_type)
        miss = 1.0 - engine.buffer_pool.point_hit_probability(table)
        # Draw the actual number of cold reads; most transactions see none
        # when the database is resident.
        expected_cold = txn_type.page_accesses * miss
        page_reads = float(rng.poisson(expected_cold)) if expected_cold > 0 else 0.0

        locks: List[ContentionPoint] = []
        latches: List[ContentionPoint] = []
        if txn_type.lock_probability > 0 and rng.random() < txn_type.lock_probability:
            locks.append(
                ContentionPoint(
                    wait_type=WaitType.LOCK,
                    slot=_skewed_slot(rng, engine.locks.row_locks.num_slots),
                    hold_seconds=txn_type.lock_hold_ms / 1000.0,
                )
            )
        if (
            txn_type.pagelatch_probability > 0
            and rng.random() < txn_type.pagelatch_probability
        ):
            latches.append(
                ContentionPoint(
                    wait_type=WaitType.PAGELATCH,
                    slot=_skewed_slot(rng, engine.locks.page_latches.num_slots),
                    hold_seconds=txn_type.pagelatch_hold_ms / 1000.0,
                )
            )
        if txn_type.latch_probability > 0 and rng.random() < txn_type.latch_probability:
            latches.append(
                ContentionPoint(
                    wait_type=WaitType.LATCH,
                    slot=int(rng.integers(0, engine.locks.latches.num_slots)),
                    hold_seconds=txn_type.latch_hold_ms / 1000.0,
                )
            )

        # Instruction budget varies transaction to transaction.
        instructions = txn_type.instructions * float(rng.lognormal(0.0, 0.25))
        return TransactionDemand(
            name=txn_type.name,
            instructions=instructions,
            page_reads=page_reads,
            log_bytes=txn_type.log_bytes,
            latches=tuple(latches),
            locks=tuple(locks),
            dirty_page_writes=txn_type.dirty_page_writes,
        )

    def _main_table(self, engine: SqlEngine, txn_type: TransactionType) -> Table:
        return engine.database.table(txn_type.main_table)
