"""Tests for CPU topology and the paper's core allocation order."""

import pytest

from repro.errors import AllocationError
from repro.hardware.topology import CpuTopology


@pytest.fixture
def topo():
    return CpuTopology(sockets=2, cores_per_socket=8, smt=2)


def test_counts(topo):
    assert topo.total_physical_cores == 16
    assert topo.total_logical_cpus == 32
    assert len(topo.cpus) == 32


def test_each_physical_core_has_two_siblings(topo):
    for cpu in topo.cpus:
        siblings = topo.siblings(cpu.cpu_id)
        assert len(siblings) == 2
        assert {s.smt_index for s in siblings} == {0, 1}


def test_paper_allocation_socket0_first(topo):
    cpus = topo.paper_allocation(8)
    sockets = {topo.cpu(c).socket for c in cpus}
    assert sockets == {0}
    # One logical CPU per physical core.
    shape = topo.describe_allocation(cpus)
    assert shape.physical_cores == 8
    assert shape.smt_paired_cores == 0


def test_paper_allocation_16_uses_both_sockets_no_smt(topo):
    cpus = topo.paper_allocation(16)
    shape = topo.describe_allocation(cpus)
    assert shape.physical_cores == 16
    assert shape.smt_paired_cores == 0
    assert shape.sockets_used == 2


def test_paper_allocation_32_pairs_all_cores(topo):
    cpus = topo.paper_allocation(32)
    shape = topo.describe_allocation(cpus)
    assert shape.physical_cores == 16
    assert shape.smt_paired_cores == 16


def test_paper_allocation_between_16_and_32_adds_siblings(topo):
    cpus = topo.paper_allocation(20)
    shape = topo.describe_allocation(cpus)
    assert shape.physical_cores == 16
    assert shape.smt_paired_cores == 4


def test_crossing_socket_boundary_flag(topo):
    assert not topo.describe_allocation(topo.paper_allocation(8)).crosses_socket_boundary
    assert topo.describe_allocation(topo.paper_allocation(9)).crosses_socket_boundary


def test_allocation_is_superset_of_smaller_one(topo):
    previous = frozenset()
    for n in (1, 2, 4, 8, 16, 32):
        current = topo.paper_allocation(n)
        assert previous <= current
        previous = current


def test_invalid_allocation_sizes(topo):
    with pytest.raises(AllocationError):
        topo.paper_allocation(0)
    with pytest.raises(AllocationError):
        topo.paper_allocation(33)


def test_invalid_cpu_id(topo):
    with pytest.raises(AllocationError):
        topo.cpu(99)
