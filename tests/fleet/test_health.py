"""Failure detection and automatic failover: heartbeats, suspicion,
promotion bounds, fencing."""

from collections import deque

import pytest

from repro.engine.statistics import dm_fleet_replicas
from repro.engine.wal import WalRecord
from repro.errors import FaultInjectionError
from repro.fleet.health import FailoverController, HeartbeatMonitor

from tests.fleet.conftest import WRITE_BYTES, build_fleet, run_writes


def monitored_fleet(replicas=3, **monitor_kwargs):
    sim, group = build_fleet(replicas=replicas)
    monitor = HeartbeatMonitor(group, **monitor_kwargs)
    controller = FailoverController(group, monitor)
    monitor.install()
    controller.install()
    return sim, group, monitor, controller


class TestMonitorValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(interval=0.0),
        dict(phi_threshold=1.0),
        dict(window=1),
    ])
    def test_rejects_bad_parameters(self, kwargs):
        _, group = build_fleet(replicas=2)
        with pytest.raises(FaultInjectionError):
            HeartbeatMonitor(group, **kwargs)


class TestHeartbeats:
    def test_healthy_replicas_beat_and_stay_unsuspected(self):
        sim, group, monitor, _ = monitored_fleet()
        sim.run(until=1.0)
        for replica in group.replicas:
            assert monitor.beats[replica.index] >= 10
            assert monitor.suspicion(replica.index) < monitor.phi_threshold
            assert not monitor.suspected(replica.index)

    def test_downed_replica_stops_beating(self):
        sim, group, monitor, _ = monitored_fleet()
        sim.run(until=0.5)
        victim = group.replicas[2]
        victim.crash()
        before = monitor.beats[victim.index]
        sim.run(until=1.5)
        assert monitor.beats[victim.index] == before
        assert monitor.suspected(victim.index)

    def test_partitioned_replica_stops_beating(self):
        sim, group, monitor, _ = monitored_fleet()
        sim.run(until=0.5)
        victim = group.replicas[1]
        victim.partitioned = True
        before = monitor.beats[victim.index]
        sim.run(until=1.5)
        assert monitor.beats[victim.index] == before
        assert monitor.suspected(victim.index)


class TestSuspicionScore:
    def test_typical_gap_is_the_median_not_the_mean(self):
        _, group = build_fleet(replicas=2)
        monitor = HeartbeatMonitor(group, interval=0.02)
        # A past outage leaves one 5-second gap in the window; the
        # detector's baseline must stay at the steady-state gap so the
        # *next* outage is still detected inside its budget.
        monitor._gaps[0] = deque([0.02] * 9 + [5.0], maxlen=16)
        assert monitor.typical_gap(0) == pytest.approx(0.02)

    def test_no_gaps_defaults_to_the_interval(self):
        _, group = build_fleet(replicas=2)
        monitor = HeartbeatMonitor(group, interval=0.05)
        assert monitor.typical_gap(0) == 0.05

    def test_detection_bound_scales_with_threshold_and_interval(self):
        _, group = build_fleet(replicas=2)
        monitor = HeartbeatMonitor(group, interval=0.02, phi_threshold=4.0)
        assert monitor.detection_bound() == pytest.approx(4.0 * 0.02 * 2.0)


class TestServiceSlowdown:
    def test_slow_replica_is_suspected_while_still_beating(self):
        sim, group, monitor, _ = monitored_fleet()
        sim.run(until=0.5)
        for _ in range(8):
            monitor.note_service_time(0, 0.1)    # 100 ms per read
            monitor.note_service_time(1, 0.003)  # 3 ms per read
        assert monitor.service_slowdown(0) >= monitor.slow_ratio
        assert monitor.suspected(0)
        assert not monitor.suspected(1)

    def test_no_samples_means_at_par(self):
        _, group = build_fleet(replicas=2)
        monitor = HeartbeatMonitor(group)
        assert monitor.service_slowdown(0) == 1.0

    def test_no_peer_samples_means_at_par(self):
        _, group = build_fleet(replicas=2)
        monitor = HeartbeatMonitor(group)
        monitor.note_service_time(0, 0.5)
        assert monitor.service_slowdown(0) == 1.0


class TestFailover:
    def test_crashed_primary_is_replaced_within_the_budget(self):
        sim, group, monitor, controller = monitored_fleet()
        run_writes(sim, group, 5, until=0.5)
        old = group.primary
        group.note_primary_down()
        old.crash()
        sim.run(until=2.0)
        assert controller.promotions == 1
        assert group.primary is not old
        assert group.epoch == 1
        window = group.failovers[0]["at"] - group.failovers[0]["failed_at"]
        assert 0.0 <= window <= controller.availability_bound()

    def test_writes_resume_after_automatic_failover(self):
        sim, group, monitor, controller = monitored_fleet()
        run_writes(sim, group, 3, until=0.5)
        group.primary.crash()
        records = run_writes(sim, group, 4, until=2.5, start_txn=50)
        assert len(records) == 4
        assert group.audit_durability()["lost"] == []

    def test_promotion_prefers_the_longest_durable_log(self):
        sim, group, monitor, controller = monitored_fleet()
        run_writes(sim, group, 3, until=0.5)
        # Give replica 2 a longer durable prefix than replica 1.
        lagging, ahead = group.replicas[1], group.replicas[2]
        extra = WalRecord(lsn=ahead.durable_lsn + 1,
                          nbytes=WRITE_BYTES, txn_id=-1)

        def lengthen():
            yield from ahead.wal.apply_shipped([extra])

        sim.spawn(lengthen(), name="lengthen")
        sim.run(until=0.6)
        assert ahead.durable_lsn > lagging.durable_lsn
        group.primary.crash()
        sim.run(until=2.0)
        assert group.primary is ahead

    def test_ties_break_by_configuration_order(self):
        sim, group, monitor, controller = monitored_fleet()
        sim.run(until=0.5)  # no writes: all durable LSNs equal
        group.primary.crash()
        sim.run(until=2.0)
        assert group.primary is group.replicas[1]

    def test_old_primary_is_fenced_before_promotion(self):
        sim, group, monitor, controller = monitored_fleet()
        old = group.primary
        sim.run(until=0.5)
        old.crash()
        sim.run(until=2.0)
        assert old.fenced
        assert old.role != "primary"

    def test_no_eligible_candidate_means_no_promotion(self):
        sim, group, monitor, controller = monitored_fleet()
        sim.run(until=0.5)
        for replica in group.replicas[1:]:
            replica.crash()
        group.primary.crash()
        sim.run(until=2.0)
        assert controller.promotions == 0
        assert group.epoch == 0

    def test_availability_bound_composition(self):
        _, group, monitor, controller = monitored_fleet()
        assert controller.availability_bound() == pytest.approx(
            monitor.detection_bound() + controller.check_interval
            + controller.promotion_pause
        )


class TestHealthDmv:
    def test_dmv_reports_suspicion_with_a_monitor(self):
        sim, group, monitor, _ = monitored_fleet()
        sim.run(until=0.5)
        victim = group.replicas[2]
        victim.crash()
        sim.run(until=1.5)
        rows = dm_fleet_replicas(group, monitor)
        by_index = {row.replica: row for row in rows}
        assert by_index[2].suspected
        assert by_index[2].suspicion > by_index[0].suspicion
        assert not by_index[0].suspected
