"""Supervised parallel experiment execution with retry, timeouts, and resume.

The study is embarrassingly parallel: every
:class:`~repro.core.experiment.ExperimentConfig` owns its machine, its
simulator, and its seeded RNG streams, so grid points share no state and
can run in separate worker processes.  Historically this module exposed a
bare ``ProcessPoolExecutor.map``; a single crashed worker (OOM kill,
segfaulting native library, ``BrokenProcessPool``) or one wedged config
then lost the *entire* sweep.  The supervised runner replaces that:

* :func:`run_supervised` drives every config through a future-based
  supervisor with per-experiment wall-clock timeouts, bounded retry with
  exponential backoff for crashed workers, and an ``on_error`` policy —
  ``"raise"`` (fail fast), ``"skip"`` / ``"collect"`` (graceful
  degradation) — returning a :class:`SweepReport` of successes plus
  structured :class:`FailedMeasurement` records;
* a :class:`~repro.core.resultcache.ResultCache` short-circuits configs
  measured before, and a :class:`~repro.core.journal.SweepJournal`
  (placed next to the cache by default) records every attempt so a
  re-invocation resumes: cached points are served, only failed points
  re-run, and attempt numbering continues where the previous run stopped;
* results come back **in input order** regardless of completion order,
  and ``jobs=1`` with no timeout runs in-process — no pool, no pickling,
  byte-identical to the historical serial path;
* :func:`run_configs` keeps the old list-of-measurements contract for
  callers that want fail-fast semantics.

Harness-level fault specs (:class:`~repro.faults.spec.WorkerCrash`,
:class:`~repro.faults.spec.WorkerStall`) are interpreted *here*, in the
worker entry point: a crash fault hard-exits the worker process (a
genuine ``BrokenProcessPool`` for the supervisor to survive), a stall
sleeps past the supervisor's deadline.  Both carry an ``attempts`` bound
checked against the global attempt number, so retried (or resumed)
attempts run clean — which is exactly what makes the retry and resume
paths testable end to end.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, TypeVar

from repro.core import dispatch, workerpool
from repro.core.dispatch import run_one  # noqa: F401 - long-standing public name
from repro.core.experiment import ExperimentConfig
from repro.core.journal import (
    STATUS_CRASH,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    SweepJournal,
)
from repro.core.measurement import Measurement
from repro.core.resultcache import (
    ResultCache,
    calibration_token,
    canonical_json,
    config_digest,
)
from repro.errors import (
    ConfigurationError,
    ExperimentTimeout,
    SimulatedWorkerCrash,
    SweepExecutionError,
)
from repro.faults.spec import harness_faults, simulation_faults
from repro.sim.randomness import RandomStreams

log = logging.getLogger(__name__)

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Journal filename used when one is auto-derived from the cache directory.
JOURNAL_BASENAME = "sweep-journal.jsonl"


def map_ordered(
    fn: Callable[[_T], _R], items: Sequence[_T], jobs: int = 1
) -> List[_R]:
    """Apply *fn* to every item, preserving input order in the output.

    With ``jobs=1`` (or one item) this is a plain in-process loop; with
    more, every item gets its own future so long and short experiments
    interleave instead of convoying.  A worker exception is re-raised as
    a chained :class:`~repro.errors.SweepExecutionError` naming the item
    index that failed — with hundreds of grid points, "which one?" is
    the first debugging question.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        results: List[_R] = []
        for index, item in enumerate(items):
            try:
                results.append(fn(item))
            except Exception as exc:
                raise _item_error(exc, index, item) from exc
        return results
    pool = workerpool.acquire(min(jobs, len(items)))
    futures = [pool.submit(fn, item) for item in items]
    results = []
    for index, (future, item) in enumerate(zip(futures, items)):
        try:
            results.append(future.result())
        except Exception as exc:
            # Fail fast for real: cancelling pending futures is not
            # enough — attempts already running would survive until
            # natural completion.  Kill the workers and retire the pool
            # (with cancel_futures) so the sweep actually stops; the next
            # acquire() builds a fresh warm pool.
            workerpool.retire(pool, kill=True)
            raise _item_error(exc, index, item) from exc
    return results


def _item_error(exc: BaseException, index: int, item: object) -> SweepExecutionError:
    summary = _describe_item(item)
    return SweepExecutionError(
        f"item {index} ({summary}) failed: {type(exc).__name__}: {exc}",
        index=index,
        item=summary,
    )


def _describe_item(item: object) -> str:
    if isinstance(item, ExperimentConfig):
        alloc = item.allocation
        return (
            f"{item.workload} sf={item.scale_factor} seed={item.seed} "
            f"cores={alloc.logical_cores} llc={alloc.llc_mb}MB"
        )
    text = repr(item)
    return text if len(text) <= 120 else text[:117] + "..."


# -- supervision policy --------------------------------------------------------

#: Accepted ``on_error`` policies.
ON_ERROR_CHOICES = ("raise", "skip", "collect")

#: Failure kinds recorded on a :class:`FailedMeasurement`.
KIND_CRASH = "crash"
KIND_TIMEOUT = "timeout"
KIND_ERROR = "error"


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the supervisor treats slow, crashed, and failing experiments.

    ``timeout``
        Per-attempt wall-clock budget in seconds (None = unlimited).  A
        timed-out attempt kills and rebuilds the worker pool — there is
        no portable way to interrupt a busy worker — and other in-flight
        configs are resubmitted without burning an attempt.
    ``retries``
        Extra attempts granted after a *crash* (worker process died).
        Deterministic experiment exceptions are never retried: the same
        config and seed would fail the same way.  Timeouts are retried
        only with ``retry_timeouts=True`` for the same reason.
    ``backoff`` / ``backoff_factor`` / ``max_backoff``
        Exponential delay between crash retries (seconds):
        ``min(backoff * factor**n, max_backoff)`` after the n-th failure.
    ``backoff_jitter`` / ``jitter_seed``
        With ``backoff_jitter`` (the default) each actual sleep is drawn
        uniformly from ``[0, retry_delay)`` — "full jitter", which
        decorrelates retry storms: when a shared cause (pool break, OOM
        burst) fails many configs at once, exponential backoff alone
        retries them in one synchronized wave that can re-trigger the
        cause.  Draws come from a named
        :class:`~repro.sim.randomness.RandomStreams` stream keyed by the
        config digest under ``jitter_seed``, so a resumed or repeated
        sweep schedules byte-identical retry times.
        :meth:`retry_delay` still reports the deterministic ceiling.
    ``on_error``
        ``"raise"``: first exhausted failure aborts the sweep (chained
        :class:`~repro.errors.SweepExecutionError`).  ``"skip"`` and
        ``"collect"`` keep going and return the holes in the
        :class:`SweepReport`; ``"collect"`` is the intended mode for
        overnight sweeps — failures come back as structured records.
    ``breaker_threshold``
        Backpressure circuit breaker (None = off).  The supervisor keeps
        a sliding window of the last ``breaker_window`` outcomes; once
        the window is full and its bad fraction reaches the threshold,
        effective concurrency is *halved* (never below
        ``breaker_min_jobs``) so an overloaded machine stops receiving
        more simultaneous work than it can absorb.  "Bad" means a failed
        attempt, and — with ``breaker_count_degrades`` (the default) —
        also a success whose measurement shows grant timeouts or
        degrades: the engine survived, but only by shedding load.  After
        ``breaker_recovery_successes`` consecutive clean outcomes the
        window grows back one job at a time (additive increase), AIMD
        style.  Transitions are counted on the :class:`SweepReport` and
        recorded as ``breaker`` events in the journal.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.25
    backoff_factor: float = 2.0
    max_backoff: float = 10.0
    backoff_jitter: bool = True
    jitter_seed: int = 0
    on_error: str = "raise"
    retry_timeouts: bool = False
    poll_interval: float = 0.05
    breaker_threshold: Optional[float] = None
    breaker_window: int = 8
    breaker_min_jobs: int = 1
    breaker_recovery_successes: int = 4
    breaker_count_degrades: bool = True

    def __post_init__(self):
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.backoff < 0 or self.backoff_factor < 1.0 or self.max_backoff < 0:
            raise ConfigurationError("invalid backoff parameters")
        if self.on_error not in ON_ERROR_CHOICES:
            raise ConfigurationError(
                f"on_error must be one of {ON_ERROR_CHOICES}, got {self.on_error!r}"
            )
        if self.poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")
        if self.breaker_threshold is not None and not 0 < self.breaker_threshold <= 1:
            raise ConfigurationError("breaker_threshold must be in (0, 1] or None")
        if self.breaker_window < 1:
            raise ConfigurationError("breaker_window must be >= 1")
        if self.breaker_min_jobs < 1:
            raise ConfigurationError("breaker_min_jobs must be >= 1")
        if self.breaker_recovery_successes < 1:
            raise ConfigurationError("breaker_recovery_successes must be >= 1")

    def retry_delay(self, failures: int) -> float:
        """Backoff before the attempt following the *failures*-th failure."""
        if failures <= 0:
            return 0.0
        return min(
            self.backoff * (self.backoff_factor ** (failures - 1)),
            self.max_backoff,
        )

    def retryable(self, kind: str) -> bool:
        if kind == KIND_CRASH:
            return True
        if kind == KIND_TIMEOUT:
            return self.retry_timeouts
        return False


@dataclass(frozen=True)
class FailedMeasurement:
    """A grid point that exhausted its attempts, as structured data."""

    index: int
    config: ExperimentConfig
    digest: str
    kind: str          # one of "crash" | "timeout" | "error"
    error_type: str
    message: str
    attempts: int      # global attempt count, including previous runs

    def describe(self) -> str:
        return (
            f"[{self.index}] {_describe_item(self.config)}: {self.kind} "
            f"after {self.attempts} attempt(s) — {self.error_type}: {self.message}"
        )


@dataclass
class SweepReport:
    """What a supervised sweep produced: successes, holes, and bookkeeping."""

    measurements: List[Optional[Measurement]]
    failures: List[FailedMeasurement] = field(default_factory=list)
    retries: int = 0
    cache_hits: int = 0
    pool_restarts: int = 0
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    #: Per-backend query placements summed over every routed measurement
    #: in the sweep (empty for single-backend sweeps).
    router_decisions: Dict[str, int] = field(default_factory=dict)
    router_fallbacks: int = 0
    router_reroutes: int = 0
    #: Fleet-resilience totals summed over every measurement (zero for
    #: sweeps that never ran a replicated or hedged configuration).
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def observe_routing(self, measurement: Measurement) -> None:
        """Fold one measurement's routing and fleet counters into the
        sweep totals."""
        for name, count in measurement.router_decisions.items():
            self.router_decisions[name] = (
                self.router_decisions.get(name, 0) + count
            )
        self.router_fallbacks += measurement.router_fallbacks
        self.router_reroutes += measurement.router_reroutes
        self.failovers += measurement.failovers
        self.hedges += measurement.hedges
        self.hedge_wins += measurement.hedge_wins

    def successes(self) -> List[Measurement]:
        return [m for m in self.measurements if m is not None]

    def completed_indices(self) -> List[int]:
        return [i for i, m in enumerate(self.measurements) if m is not None]

    def summary(self) -> str:
        total = len(self.measurements)
        done = len(self.successes())
        text = (
            f"{done}/{total} configs measured "
            f"({self.cache_hits} cached, {len(self.failures)} failed, "
            f"{self.retries} retries, {self.pool_restarts} pool restarts)"
        )
        if self.breaker_trips or self.breaker_recoveries:
            text += (
                f"; breaker tripped {self.breaker_trips}x, "
                f"recovered {self.breaker_recoveries}x"
            )
        return text


class _CircuitBreaker:
    """AIMD concurrency governor over the supervisor's in-flight window.

    Multiplicative decrease: when the bad fraction of a full sliding
    window reaches the threshold, the job window halves (floor at
    ``breaker_min_jobs``) and the window resets so one burst cannot trip
    the breaker repeatedly.  Additive increase: every
    ``breaker_recovery_successes`` consecutive clean outcomes win back
    one job, up to the configured maximum.  Disabled (every observation
    a no-op) when the policy carries no threshold — and structurally
    inert at ``jobs=1``, where there is nothing left to halve.
    """

    def __init__(self, policy: SupervisionPolicy, jobs: int):
        self.policy = policy
        self.max_jobs = jobs
        self.jobs = jobs
        self._recent: Deque[bool] = deque(maxlen=policy.breaker_window)
        self._streak = 0

    @property
    def enabled(self) -> bool:
        return self.policy.breaker_threshold is not None

    def observe(self, bad: bool) -> Optional[str]:
        """Feed one outcome; returns ``"trip"``/``"recover"`` on a
        concurrency change, None otherwise."""
        if not self.enabled:
            return None
        self._recent.append(bad)
        if bad:
            self._streak = 0
            window = self.policy.breaker_window
            if (
                len(self._recent) == window
                and sum(self._recent) / window >= self.policy.breaker_threshold
                and self.jobs > self.policy.breaker_min_jobs
            ):
                self.jobs = max(self.policy.breaker_min_jobs, self.jobs // 2)
                self._recent.clear()
                return "trip"
            return None
        self._streak += 1
        if (
            self.jobs < self.max_jobs
            and self._streak >= self.policy.breaker_recovery_successes
        ):
            self.jobs += 1
            self._streak = 0
            return "recover"
        return None


@dataclass
class _Item:
    """Supervisor-internal state for one pending grid point."""

    index: int
    config: ExperimentConfig
    digest: str
    base_attempts: int        # failures recorded by previous invocations
    failures: int = 0         # failures observed this invocation
    started: float = 0.0      # monotonic submit time of the running attempt
    eligible: float = 0.0     # monotonic time the next attempt may start

    @property
    def attempt(self) -> int:
        """Global attempt number passed to the worker (0-based)."""
        return self.base_attempts + self.failures

    @property
    def total_attempts(self) -> int:
        return self.base_attempts + self.failures


class _Supervisor:
    """Future-based sweep supervisor (see module docstring)."""

    def __init__(
        self,
        configs: Sequence[ExperimentConfig],
        jobs: int,
        cache: Optional[ResultCache],
        policy: SupervisionPolicy,
        journal: Optional[SweepJournal],
        chunk: Optional[int] = None,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if chunk is not None and chunk < 1:
            raise ConfigurationError("chunk must be >= 1 (or None for auto)")
        self.configs = list(configs)
        self.jobs = jobs
        self.cache = cache
        self.policy = policy
        self.journal = journal
        self.chunk = chunk
        self.report = SweepReport(measurements=[None] * len(self.configs))
        self._token = cache.token if cache is not None else None
        self._breaker = _CircuitBreaker(policy, jobs)
        self._pool: Optional[workerpool.WarmPool] = None
        # Per-digest jitter streams: keyed by config digest so a resumed
        # sweep redraws the same retry schedule, forked off the sweep
        # runner's own namespace so no simulation stream is perturbed.
        self._jitter = RandomStreams(policy.jitter_seed).fork("retry-backoff")

    # -- digests / journal -----------------------------------------------------

    def _digest(self, config: ExperimentConfig) -> str:
        if self.cache is not None:
            return self.cache.digest(config)
        if self._token is None:
            self._token = calibration_token()
        return config_digest(config, self._token)

    def _journal_record(self, item: _Item, status: str,
                        error: Optional[str] = None) -> None:
        if self.journal is not None:
            self.journal.record(item.digest, status, attempt=item.attempt,
                                index=item.index, error=error)

    # -- outcome handling ------------------------------------------------------

    def _succeed(self, item: _Item, measurement: Measurement) -> None:
        self.report.measurements[item.index] = measurement
        self._journal_record(item, STATUS_OK)
        self.report.observe_routing(measurement)
        if measurement.router_policy is not None and self.journal is not None:
            self.journal.note(
                "route",
                digest=item.digest,
                policy=measurement.router_policy,
                decisions=dict(measurement.router_decisions),
                fallbacks=measurement.router_fallbacks,
                reroutes=measurement.router_reroutes,
            )
        if self.journal is not None and (
            measurement.failovers or measurement.hedges
        ):
            self.journal.note(
                "fleet",
                digest=item.digest,
                failovers=measurement.failovers,
                hedges=measurement.hedges,
                hedge_wins=measurement.hedge_wins,
                unavailable_seconds=measurement.unavailable_seconds,
            )
        if self.cache is not None and not measurement.is_predicted:
            # The cache holds simulated ground truth only; a surrogate
            # prediction must never masquerade as a measured entry.
            self.cache.put(item.config, measurement, digest=item.digest)
        degraded = measurement.grant_timeouts > 0 or measurement.grant_degrades > 0
        self._breaker_observe(self.policy.breaker_count_degrades and degraded)

    def _breaker_observe(self, bad: bool) -> None:
        """Feed one outcome to the breaker; publish any transition."""
        transition = self._breaker.observe(bad)
        if transition is None:
            return
        if transition == "trip":
            self.report.breaker_trips += 1
            log.warning(
                "circuit breaker tripped: effective concurrency halved to %d",
                self._breaker.jobs,
            )
        else:
            self.report.breaker_recoveries += 1
            log.info(
                "circuit breaker recovering: effective concurrency now %d",
                self._breaker.jobs,
            )
        if self.journal is not None:
            self.journal.note("breaker", transition=transition,
                              jobs=self._breaker.jobs)

    def _backoff_delay(self, item: _Item) -> float:
        """The actual sleep before *item*'s next attempt.

        :meth:`SupervisionPolicy.retry_delay` gives the exponential
        ceiling; with ``backoff_jitter`` the sleep is drawn uniformly
        from ``[0, ceiling)`` (full jitter) out of the item's own named
        stream, so repeated runs — and resumed sweeps, which key the
        stream by digest — schedule identical retry times while
        concurrent retries of *different* configs decorrelate.
        """
        ceiling = self.policy.retry_delay(item.failures)
        if not self.policy.backoff_jitter or ceiling <= 0:
            return ceiling
        return float(self._jitter.get(item.digest).uniform(0.0, ceiling))

    def _fail(self, item: _Item, kind: str, exc: Optional[BaseException]) -> bool:
        """Record one failed attempt.

        Returns True when a retry was scheduled (``item.eligible`` set),
        False when the item is finally failed (and, under
        ``on_error="skip"``/``"collect"``, recorded as a hole).  Under
        ``on_error="raise"`` a final failure raises a chained
        :class:`~repro.errors.SweepExecutionError` instead.
        """
        status = {KIND_CRASH: STATUS_CRASH, KIND_TIMEOUT: STATUS_TIMEOUT}.get(
            kind, STATUS_ERROR
        )
        message = f"{type(exc).__name__}: {exc}" if exc is not None else kind
        self._journal_record(item, status, error=message)
        self._breaker_observe(True)
        item.failures += 1
        if self.policy.retryable(kind) and item.failures <= self.policy.retries:
            self.report.retries += 1
            delay = self._backoff_delay(item)
            item.eligible = time.monotonic() + delay
            log.warning(
                "config %d (%s) %s on attempt %d; retrying in %.2fs",
                item.index, item.digest[:12], kind, item.attempt - 1, delay,
            )
            return True
        failure = self._make_failure(item, kind, exc)
        if self.policy.on_error == "raise":
            error = SweepExecutionError(
                f"config {failure.index} ({failure.digest[:12]}) {kind} "
                f"after {failure.attempts} attempt(s): {failure.message}",
                index=failure.index,
                item=_describe_item(item.config),
            )
            if exc is not None:
                raise error from exc
            raise error
        if self.policy.on_error == "collect":
            self.report.failures.append(failure)
        log.warning("dropping %s", failure.describe())
        return False

    def _make_failure(self, item: _Item, kind: str,
                      exc: Optional[BaseException]) -> FailedMeasurement:
        if exc is None:
            exc = ExperimentTimeout(
                f"attempt exceeded {self.policy.timeout}s wall-clock budget"
            )
        return FailedMeasurement(
            index=item.index,
            config=item.config,
            digest=item.digest,
            kind=kind,
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=item.total_attempts,
        )

    # -- main loop -------------------------------------------------------------

    def run(self) -> SweepReport:
        # Batched pre-dispatch probe: every config is hashed exactly once,
        # every cache hit resolves before any worker process is touched,
        # and the digests feed straight into journaling and dispatch.
        if self.cache is not None:
            probes = self.cache.get_many(self.configs)
        else:
            probes = [(self._digest(config), None) for config in self.configs]
        pending: List[_Item] = []
        for index, (config, (digest, hit)) in enumerate(
            zip(self.configs, probes)
        ):
            if hit is not None:
                self.report.measurements[index] = hit
                self.report.cache_hits += 1
                self.report.observe_routing(hit)
                continue
            base = self.journal.attempts(digest) if self.journal else 0
            pending.append(_Item(index=index, config=config, digest=digest,
                                 base_attempts=base))
            sim_faults = simulation_faults(config.faults)
            if sim_faults and self.journal is not None:
                # Record the fault schedule a chaos-faulted point will run
                # under; a resumed sweep re-notes the same canonical
                # payload, so journals from interrupted chaos sweeps
                # replay-match (tests/fleet/test_chaos_resume.py).
                self.journal.note(
                    "chaos",
                    digest=digest,
                    faults=[canonical_json(f) for f in sim_faults],
                )
        if not pending:
            return self.report
        if self.jobs == 1 and self.policy.timeout is None:
            self._run_serial(pending)
        else:
            self._run_pool(pending)
        return self.report

    def _run_serial(self, pending: List[_Item]) -> None:
        """In-process path: no pool, no pickling, no timeout enforcement.

        Crash faults surface as :class:`SimulatedWorkerCrash` so the
        retry/backoff machinery is exercised identically."""
        for item in pending:
            while True:
                delay = item.eligible - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                try:
                    measurement = dispatch.run_attempt(
                        item.config, item.attempt, in_pool=False
                    )
                except SimulatedWorkerCrash as exc:
                    retry = self._fail(item, KIND_CRASH, exc)
                except Exception as exc:
                    retry = self._fail(item, KIND_ERROR, exc)
                else:
                    self._succeed(item, measurement)
                    break
                if not retry:
                    break

    def _chunk_size(self, points: int) -> int:
        """Points per dispatched chunk for a sweep of *points*.

        A per-attempt timeout forces chunk=1: the attempt clock is per
        grid point, and a chunk of N points sharing one future would
        smear N budgets together.  An explicit chunk wins otherwise;
        the default splits the sweep into about ``jobs * 4`` slices.
        """
        if self.policy.timeout is not None:
            return 1
        if self.chunk is not None:
            return self.chunk
        return dispatch.auto_chunk(points, self.jobs)

    @staticmethod
    def _next_batch(ready: List[_Item], chunk: int) -> List[_Item]:
        """Up to *chunk* consecutive ready items, faulted points solo.

        Harness-faulted configs (crash/stall injection) get a chunk to
        themselves: a crash fault kills the whole worker, and chunk-mates
        of the culprit would be dragged into suspect quarantine for no
        reason.
        """
        first = ready[0]
        batch = [first]
        if chunk > 1 and not harness_faults(first.config.faults):
            for item in ready[1:chunk]:
                if harness_faults(item.config.faults):
                    break
                batch.append(item)
        return batch

    def _run_pool(self, pending: List[_Item]) -> None:
        waiting: List[_Item] = list(pending)
        # When the pool breaks with several attempts in flight,
        # BrokenProcessPool does not say which worker died, so nobody can
        # fairly be charged a crash attempt.  The in-flight set is instead
        # quarantined: suspects re-run one at a time (ahead of everything
        # else), so a completed solo run exonerates an item at no cost and
        # a solo pool break convicts the culprit with certainty.
        suspects: List[_Item] = []
        running: Dict[Future, List[_Item]] = {}
        chunk = self._chunk_size(len(pending))
        self._pool = workerpool.acquire(self.jobs)
        try:
            while waiting or suspects or running:
                now = time.monotonic()
                # Submit eligible items, several per future, up to the
                # in-flight window — counted in chunks, so the window
                # still approximates the number of busy workers
                # (submission is deferred while the window is full so the
                # per-attempt clock starts when the attempt actually can).
                # During quarantine the window narrows to one solo
                # suspect; otherwise the circuit breaker governs how much
                # concurrency the machine is currently trusted with.
                source = suspects if suspects else waiting
                window = 1 if suspects else self._breaker.jobs
                ready = [it for it in source if it.eligible <= now]
                while ready and len(running) < window:
                    batch = self._next_batch(ready, 1 if suspects else chunk)
                    del ready[:len(batch)]
                    started = time.monotonic()
                    for item in batch:
                        source.remove(item)
                        item.started = started
                    task = dispatch.make_chunk(
                        [it.config for it in batch],
                        [it.attempt for it in batch],
                    )
                    try:
                        future = self._pool.submit(dispatch.run_chunk, task)
                    except BrokenProcessPool:
                        # A worker died between taking this batch and the
                        # submit (warm fork workers start tasks fast
                        # enough to lose this race).  The batch never ran:
                        # put it back unharmed.  In-flight futures surface
                        # the break below; with none in flight, replace
                        # the pool here.
                        source[:0] = batch
                        if not running:
                            self._recycle_pool(kill=False)
                        break
                    running[future] = batch
                if not running:
                    # Everything is backing off; sleep toward the earliest
                    # eligibility.
                    wake = min(it.eligible for it in suspects + waiting)
                    time.sleep(max(0.0, min(wake - time.monotonic(),
                                            self.policy.poll_interval * 10)))
                    continue
                done, _ = wait(set(running), timeout=self.policy.poll_interval,
                               return_when=FIRST_COMPLETED)
                crashed: List[_Item] = []
                broken_exc: Optional[BaseException] = None
                for future in done:
                    batch = running.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool as exc:
                        broken_exc = exc
                        crashed.extend(batch)
                    except Exception as exc:
                        # Chunk-level failure (the task itself, not a
                        # point): charge every point, same as a shared
                        # worker exception would have.
                        for item in batch:
                            if self._fail(item, KIND_ERROR, exc):
                                waiting.append(item)
                    else:
                        for item, (tag, payload) in zip(batch, outcomes):
                            if tag == dispatch.OUTCOME_OK:
                                self._succeed(item, payload)
                            elif isinstance(payload, SimulatedWorkerCrash):
                                if self._fail(item, KIND_CRASH, payload):
                                    waiting.append(item)
                            elif self._fail(item, KIND_ERROR, payload):
                                waiting.append(item)
                if broken_exc is not None:
                    # The pool is dead; its leftover futures only ever
                    # raise BrokenProcessPool, so never await them.
                    in_flight = crashed + [
                        item for batch in running.values() for item in batch
                    ]
                    running.clear()
                    self._recycle_pool(kill=False)
                    if len(in_flight) == 1:
                        # A solo break names its culprit.
                        item = in_flight[0]
                        if self._fail(item, KIND_CRASH, broken_exc):
                            (suspects if suspects else waiting).append(item)
                    else:
                        in_flight.sort(key=lambda it: it.index)
                        for item in in_flight:
                            item.eligible = 0.0
                        suspects.extend(in_flight)
                    continue
                if self.policy.timeout is not None:
                    self._reap_timeouts(running, waiting)
        except SweepExecutionError:
            # Fail-fast path: don't leave stalled workers behind.
            workerpool.retire(self._pool, kill=True)
            raise
        finally:
            # The warm pool outlives the sweep on purpose — the next
            # sweep in this process reuses its already-imported workers.
            self._pool = None

    def _reap_timeouts(
        self,
        running: Dict[Future, List[_Item]],
        waiting: List[_Item],
    ) -> None:
        """Fail attempts past their deadline, replacing the pool if so.

        A busy worker cannot be interrupted portably, so any timeout
        kills the whole pool; innocent in-flight attempts are resubmitted
        without burning an attempt.  A timeout policy forces chunk=1
        (:meth:`_chunk_size`), so every running future maps to exactly
        one item and deadlines stay per grid point.
        """
        now = time.monotonic()
        expired = [f for f, batch in running.items()
                   if now - batch[0].started > self.policy.timeout]
        if not expired:
            return
        for future in expired:
            for item in running.pop(future):
                if self._fail(item, KIND_TIMEOUT, None):
                    waiting.append(item)
        for batch in running.values():
            for item in batch:
                item.eligible = 0.0
                waiting.append(item)
        running.clear()
        self._recycle_pool(kill=True)

    def _recycle_pool(self, kill: bool) -> None:
        """Retire the current (dead or poisoned) pool and acquire a fresh
        one.  ``kill=True`` terminates workers first — the timeout path,
        where attempts must actually stop, not drain."""
        assert self._pool is not None
        workerpool.retire(self._pool, kill=kill)
        self.report.pool_restarts += 1
        self._pool = workerpool.acquire(self.jobs)


def run_supervised(
    configs: Sequence[ExperimentConfig],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[SupervisionPolicy] = None,
    journal: Optional[SweepJournal] = None,
    chunk: Optional[int] = None,
) -> SweepReport:
    """Run every config under supervision; never loses partial progress.

    When *cache* is given and *journal* is not, a journal is opened next
    to the cache (``sweep-journal.jsonl``) so interrupted sweeps resume:
    successes short-circuit through the cache, failed points re-run with
    their global attempt number carried forward.

    *chunk* sets how many grid points share one worker round-trip (None:
    about four chunks per job; forced to 1 by a per-attempt timeout).
    Chunking changes dispatch granularity only — results, ordering,
    journal records, and retry accounting stay per grid point.
    """
    policy = policy or SupervisionPolicy()
    if journal is None and cache is not None:
        journal = SweepJournal(cache.directory / JOURNAL_BASENAME)
    return _Supervisor(configs, jobs, cache, policy, journal, chunk).run()


def run_configs(
    configs: Sequence[ExperimentConfig],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[SupervisionPolicy] = None,
    journal: Optional[SweepJournal] = None,
    chunk: Optional[int] = None,
) -> List[Measurement]:
    """Run every config, in order; returns a dense list or raises.

    The historical fail-fast contract: any hole in the report (possible
    only under a ``"skip"``/``"collect"`` policy) raises
    :class:`~repro.errors.SweepExecutionError` naming the first missing
    grid point.  Use :func:`run_supervised` to consume partial results.
    """
    report = run_supervised(configs, jobs=jobs, cache=cache, policy=policy,
                            journal=journal, chunk=chunk)
    for index, measurement in enumerate(report.measurements):
        if measurement is None:
            raise SweepExecutionError(
                f"config {index} produced no measurement "
                f"({len(report.failures)} failure(s) recorded): "
                + "; ".join(f.describe() for f in report.failures[:3]),
                index=index,
                item=_describe_item(configs[index]),
            )
    return report.measurements  # type: ignore[return-value]


def with_seeds(
    configs: Sequence[ExperimentConfig], base_seed: int = 0, stride: int = 1
) -> List[ExperimentConfig]:
    """Derive per-config seeds deterministically: ``base_seed + i*stride``.

    Replicated sweeps (same grid, different seeds) need every point to
    carry its own seed *before* dispatch — seeding inside workers would
    tie results to scheduling order.  The seed is part of the cache key,
    so each replicate caches independently.
    """
    return [
        replace(config, seed=base_seed + index * stride)
        for index, config in enumerate(configs)
    ]
