"""Tests for FCFS server, processor sharing, and token bucket."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Simulator, Timeout
from repro.sim.resources import FcfsServer, ProcessorSharingServer, TokenBucket


class TestFcfsServer:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        server = FcfsServer(sim, capacity=1)
        spans = []
        def worker(i):
            yield from server.acquire()
            start = sim.now
            yield Timeout(2.0)
            server.release()
            spans.append((i, start, sim.now))
        for i in range(3):
            sim.spawn(worker(i))
        sim.run()
        assert spans == [(0, 0.0, 2.0), (1, 2.0, 4.0), (2, 4.0, 6.0)]

    def test_capacity_two_allows_two_concurrent(self):
        sim = Simulator()
        server = FcfsServer(sim, capacity=2)
        done = []
        def worker(i):
            yield from server.acquire()
            yield Timeout(1.0)
            server.release()
            done.append((i, sim.now))
        for i in range(4):
            sim.spawn(worker(i))
        sim.run()
        assert [t for _, t in done] == [1.0, 1.0, 2.0, 2.0]

    def test_wait_time_accounted(self):
        sim = Simulator()
        server = FcfsServer(sim, capacity=1)
        def worker():
            yield from server.acquire()
            yield Timeout(5.0)
            server.release()
        sim.spawn(worker())
        sim.spawn(worker())
        sim.run()
        assert server.total_wait_time == pytest.approx(5.0)
        assert server.total_acquisitions == 2

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        server = FcfsServer(sim, capacity=1)
        with pytest.raises(SimulationError):
            server.release()

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            FcfsServer(sim, capacity=0)


class TestProcessorSharing:
    def test_single_job_runs_at_full_rate(self):
        sim = Simulator()
        cpu = ProcessorSharingServer(sim, capacity=2.0)
        finish = []
        def worker():
            yield from cpu.submit(4.0)
            finish.append(sim.now)
        sim.spawn(worker())
        sim.run()
        assert finish == [pytest.approx(2.0)]

    def test_two_equal_jobs_share_capacity(self):
        sim = Simulator()
        cpu = ProcessorSharingServer(sim, capacity=1.0)
        finish = []
        def worker():
            yield from cpu.submit(1.0)
            finish.append(sim.now)
        sim.spawn(worker())
        sim.spawn(worker())
        sim.run()
        # Both jobs run at rate 1/2 -> both complete at t=2.
        assert finish == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_late_arrival_slows_first_job(self):
        sim = Simulator()
        cpu = ProcessorSharingServer(sim, capacity=1.0)
        finish = {}
        def first():
            yield from cpu.submit(2.0)
            finish["first"] = sim.now
        def second():
            yield Timeout(1.0)
            yield from cpu.submit(0.5)
            finish["second"] = sim.now
        sim.spawn(first())
        sim.spawn(second())
        sim.run()
        # First runs alone [0,1) doing 1 unit; shares [1,2) doing 0.5;
        # second finishes its 0.5 at t=2; first then finishes 0.5 at 2.5.
        assert finish["second"] == pytest.approx(2.0)
        assert finish["first"] == pytest.approx(2.5)

    def test_zero_work_completes_immediately(self):
        sim = Simulator()
        cpu = ProcessorSharingServer(sim, capacity=1.0)
        def worker():
            yield from cpu.submit(0.0)
            return sim.now
        proc = sim.spawn(worker())
        sim.run()
        assert proc.result == 0.0

    def test_work_conservation(self):
        sim = Simulator()
        cpu = ProcessorSharingServer(sim, capacity=3.0)
        def worker(amount):
            yield from cpu.submit(amount)
        for amount in (1.0, 2.5, 0.25, 4.0):
            sim.spawn(worker(amount))
        sim.run()
        assert cpu.total_work_done == pytest.approx(7.75)


class TestTokenBucket:
    def test_unlimited_never_blocks(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=None)
        def worker():
            yield from bucket.consume(1e12)
            return sim.now
        proc = sim.spawn(worker())
        sim.run()
        assert proc.result == 0.0

    def test_rate_limits_throughput(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=100.0)
        def worker():
            for _ in range(5):
                yield from bucket.consume(100.0)
            return sim.now
        proc = sim.spawn(worker())
        sim.run()
        assert proc.result == pytest.approx(5.0)

    def test_burst_allows_initial_spike(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=10.0, burst=100.0)
        def worker():
            yield from bucket.consume(100.0)
            return sim.now
        proc = sim.spawn(worker())
        sim.run()
        assert proc.result == pytest.approx(0.0)

    def test_fifo_ordering(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=10.0)
        order = []
        def big():
            yield from bucket.consume(100.0)
            order.append("big")
        def small():
            yield from bucket.consume(1.0)
            order.append("small")
        sim.spawn(big())
        sim.spawn(small())
        sim.run()
        assert order == ["big", "small"]

    def test_set_rate_takes_effect(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1.0)
        done = []
        def worker():
            yield from bucket.consume(10.0)
            done.append(sim.now)
        def tighten():
            yield Timeout(0.0)
            bucket.set_rate(100.0)
        sim.spawn(worker())
        sim.spawn(tighten())
        sim.run()
        assert done[0] < 10.0

    def test_total_consumed_tracks_all_requests(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate=1000.0)
        def worker():
            yield from bucket.consume(10.0)
            yield from bucket.consume(20.0)
        sim.spawn(worker())
        sim.run()
        assert bucket.total_consumed == pytest.approx(30.0)

    def test_invalid_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            TokenBucket(sim, rate=0.0)
