"""Integration tests for SqlOs, the executor, and the SqlEngine facade."""

import pytest

from repro.core.knobs import ResourceAllocation
from repro.engine.engine import SqlEngine
from repro.engine.executor import ContentionPoint, TransactionDemand, parallel_startup_seconds
from repro.engine.locks import WaitType
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.schemas import build_tpch
from repro.errors import ConfigurationError
from repro.hardware.machine import Machine
from repro.units import KIB
from repro.workloads.profiles import execution_profile
from repro.workloads.tpch import tpch_query


def make_engine(cores=32, llc_mb=40, sf=10, max_dop=None, grant_percent=25.0):
    machine = Machine()
    ResourceAllocation(logical_cores=cores, llc_mb=llc_mb).apply_to(machine)
    governor = ResourceGovernor(
        max_dop=max_dop if max_dop is not None else cores,
        grant_percent=grant_percent,
    )
    return SqlEngine(
        machine=machine,
        database=build_tpch(sf),
        execution=execution_profile("tpch", sf),
        governor=governor,
        concurrent_grant_slots=3,
    )


class TestResourceGovernor:
    def test_effective_dop_caps(self):
        governor = ResourceGovernor(max_dop=32)
        assert governor.effective_dop(8) == 8
        assert governor.effective_dop(32) == 32
        assert governor.effective_dop(32, hint=4) == 4

    def test_invalid_settings_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceGovernor(max_dop=0)
        with pytest.raises(ConfigurationError):
            ResourceGovernor(grant_percent=0)


class TestSqlOs:
    def test_fewer_cores_less_capacity(self):
        small = make_engine(cores=4).sqlos
        big = make_engine(cores=16).sqlos
        assert small.capacity_core_equivalents < big.capacity_core_equivalents

    def test_smaller_llc_higher_mpki(self):
        full = make_engine(llc_mb=40, sf=100).sqlos
        tiny = make_engine(llc_mb=2, sf=100).sqlos
        assert tiny.mpki > full.mpki
        assert tiny.per_core_ips < full.per_core_ips

    def test_hyperthreading_inflates_footprint(self):
        no_ht = make_engine(cores=16, sf=10).sqlos
        ht = make_engine(cores=32, sf=10).sqlos
        assert ht.mpki >= no_ht.mpki

    def test_counters_monotone(self):
        engine = make_engine()
        sim = engine.machine.sim
        def worker():
            yield from engine.sqlos.run_on_cpu(1e9, dop=8)
        sim.spawn(worker())
        sim.run()
        totals = engine.counter_totals()
        assert totals["instructions_retired"] == pytest.approx(1e9, rel=0.01)
        assert totals["llc_misses"] > 0

    def test_transaction_cpu_path_accounts_instructions(self):
        engine = make_engine()
        sim = engine.machine.sim
        def worker():
            yield from engine.sqlos.run_transaction_cpu(5e8)
        sim.spawn(worker())
        sim.run()
        assert engine.counter_totals()["instructions_retired"] == pytest.approx(
            5e8, rel=0.01
        )


class TestQueryExecution:
    def test_run_query_returns_result(self):
        engine = make_engine(sf=10)
        sim = engine.machine.sim
        def runner():
            result = yield from engine.run_query(tpch_query(6, 10))
            return result
        proc = sim.spawn(runner())
        sim.run()
        assert proc.result.elapsed > 0

    def test_dop_hint_limits_parallelism(self):
        engine = make_engine(sf=100)
        hinted = engine.optimize(tpch_query(1, 100), dop_hint=4)
        free = engine.optimize(tpch_query(1, 100))
        assert hinted.dop <= 4
        assert free.dop == 32

    def test_more_cores_finish_faster(self):
        def elapsed(cores):
            engine = make_engine(cores=cores, sf=30)
            sim = engine.machine.sim
            def runner():
                result = yield from engine.run_query(tpch_query(1, 30))
                return result
            proc = sim.spawn(runner())
            sim.run()
            return proc.result.elapsed
        assert elapsed(16) < elapsed(2)

    def test_small_grant_slows_spilling_query(self):
        """The Fig 8 mechanism: Q18 with a tiny grant runs slower."""
        def elapsed(grant_percent):
            engine = make_engine(sf=30, grant_percent=grant_percent)
            sim = engine.machine.sim
            def runner():
                result = yield from engine.run_query(tpch_query(18, 30))
                return result
            proc = sim.spawn(runner())
            sim.run()
            return proc.result.elapsed
        assert elapsed(2.0) > elapsed(25.0) * 1.1

    def test_parallel_startup_monotone(self):
        assert parallel_startup_seconds(1) == 0.0
        values = [parallel_startup_seconds(d) for d in (2, 4, 8, 16, 32)]
        assert values == sorted(values)


class TestTransactionExecution:
    def test_transaction_lifecycle(self):
        engine = make_engine()
        sim = engine.machine.sim
        demand = TransactionDemand(
            name="txn",
            instructions=1e7,
            page_reads=2.0,
            log_bytes=4 * KIB,
            locks=(ContentionPoint(WaitType.LOCK, 0, 0.001),),
            latches=(ContentionPoint(WaitType.PAGELATCH, 0, 0.0005),),
        )
        def runner():
            result = yield from engine.run_transaction(demand)
            return result
        proc = sim.spawn(runner())
        sim.run()
        assert proc.result.elapsed > 0
        # Page reads were charged as PAGEIOLATCH time.
        assert engine.locks.accounting.wait_time[WaitType.PAGEIOLATCH] > 0

    def test_lock_released_after_commit(self):
        engine = make_engine()
        sim = engine.machine.sim
        demand = TransactionDemand(
            name="txn", instructions=1e6, page_reads=0.0, log_bytes=KIB,
            locks=(ContentionPoint(WaitType.LOCK, 3, 0.0),),
        )
        def runner():
            yield from engine.run_transaction(demand)
        sim.spawn(runner())
        sim.run()
        # Slot free again: an immediate re-acquire would not wait.
        assert engine.locks.row_locks._slots[3].in_use == 0

    def test_contended_lock_serializes_commits(self):
        engine = make_engine()
        sim = engine.machine.sim
        demand = TransactionDemand(
            name="txn", instructions=1e6, page_reads=0.0, log_bytes=KIB,
            locks=(ContentionPoint(WaitType.LOCK, 0, 0.005),),
        )
        def runner():
            yield from engine.run_transaction(demand)
        for _ in range(4):
            sim.spawn(runner())
        sim.run()
        assert engine.locks.accounting.wait_time[WaitType.LOCK] > 0


class TestPlanAdaptation:
    def test_q20_plan_changes_with_maxdop_at_sf300(self):
        """Fig 7: serial Q20 hash-joins part; MAXDOP=32 nested-loops it."""
        from repro.engine.plan.operators import OpKind
        engine = make_engine(sf=300)
        spec = tpch_query(20, 300)
        serial = engine.optimizer.optimize(spec, max_dop=1)
        parallel = engine.optimizer.optimize(spec, max_dop=32)
        assert not serial.plan.uses(OpKind.NESTED_LOOPS)
        assert serial.plan.uses(OpKind.HASH_JOIN)
        assert parallel.plan.uses(OpKind.NESTED_LOOPS)
        nlj_inners = [
            node.children[1].table
            for node in parallel.plan.walk()
            if node.op is OpKind.NESTED_LOOPS
        ]
        assert "p" in nlj_inners
        assert serial.plan.signature() != parallel.plan.signature()

    def test_q20_serial_at_small_scale_factors(self):
        """§7: Q20's serial plan is chosen at SF 10 and 30 for all MAXDOP."""
        for sf in (10, 30):
            engine = make_engine(sf=sf)
            assert engine.optimize(tpch_query(20, sf)).dop == 1

    def test_insensitive_queries_at_sf10(self):
        """§7: queries 2, 6, 14, 15, 20 choose serial plans at SF=10."""
        engine = make_engine(sf=10)
        for number in (2, 6, 14, 15, 20):
            assert engine.optimize(tpch_query(number, 10)).dop == 1, number

    def test_almost_all_parallel_at_sf100(self):
        """§7: at larger scale factors a serial plan is almost never right."""
        engine = make_engine(sf=100)
        serial = [
            n for n in range(1, 23)
            if engine.optimize(tpch_query(n, 100)).dop == 1
        ]
        assert len(serial) == 0
