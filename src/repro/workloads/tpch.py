"""TPC-H: the 22 query templates and the multi-stream DSS workload (§2.2).

Each query is expressed as a :class:`QuerySpec` whose selectivities,
join graph, aggregation, and sort shapes follow the TPC-H specification.
Cardinality-dependent fields (group counts, sort sizes) are functions of
the scale factor, so specs are produced by :func:`tpch_query`.

The memory footprints implied by the specs (hash builds, large hash
aggregations, sorts) are the mechanism behind Fig 8: Q18 (the big
group-by-orderkey on lineitem) needs far more memory than any grant cap,
while Q1/Q6-style scan+aggregate queries need almost none.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.calibration import TPCH_QUERY_STREAMS
from repro.engine.catalog import Database
from repro.engine.engine import SqlEngine
from repro.engine.optimizer.queryspec import JoinEdge, JoinKind, QuerySpec, TableRef
from repro.engine.schemas import build_tpch
from repro.engine.sqlos import ExecutionCharacteristics
from repro.errors import WorkloadError
from repro.workloads.base import ThroughputTracker, Workload
from repro.workloads.profiles import execution_profile

_T = TableRef
_J = JoinEdge


def _specs_for(sf: int) -> Dict[int, QuerySpec]:
    """Build all 22 specs for one scale factor."""
    return {
        1: QuerySpec(
            name="Q1",
            tables=(_T("lineitem", "l", selectivity=0.98, column_fraction=0.45),),
            group_rows=4,
            sort_rows=4,
        ),
        2: QuerySpec(
            name="Q2",
            tables=(
                _T("part", "p", selectivity=0.004, column_fraction=0.4),
                _T("partsupp", "ps", column_fraction=0.5),
                _T("supplier", "s", column_fraction=0.6),
                _T("nation", "n"),
                _T("region", "r", selectivity=0.2),
            ),
            joins=(
                _J("ps", "p", key_side="p"),
                _J("ps", "s", key_side="s"),
                _J("s", "n", key_side="n"),
                _J("n", "r", key_side="r"),
            ),
            group_rows=0,
            sort_rows=max(1.0, 46.0 * sf),
            top=100,
            correlated_passes=1.3,  # min-cost correlated subquery
        ),
        3: QuerySpec(
            name="Q3",
            tables=(
                _T("customer", "c", selectivity=0.2, column_fraction=0.3),
                _T("orders", "o", selectivity=0.48, column_fraction=0.35),
                _T("lineitem", "l", selectivity=0.54, column_fraction=0.3),
            ),
            joins=(_J("o", "c", key_side="c"), _J("l", "o", key_side="o")),
            group_rows=300_000.0 * sf / 100.0 * 100.0,  # ~orderkey groups
            sort_rows=300_000.0 * sf,
            top=10,
        ),
        4: QuerySpec(
            name="Q4",
            tables=(
                _T("orders", "o", selectivity=0.038, column_fraction=0.3),
                _T("lineitem", "l", selectivity=0.63, column_fraction=0.2),
            ),
            joins=(_J("o", "l", key_side="o", kind=JoinKind.SEMI, preserved="o"),),
            group_rows=5,
            sort_rows=5,
        ),
        5: QuerySpec(
            name="Q5",
            tables=(
                _T("customer", "c", column_fraction=0.25),
                _T("orders", "o", selectivity=0.152, column_fraction=0.3),
                _T("lineitem", "l", column_fraction=0.3),
                _T("supplier", "s", column_fraction=0.4),
                _T("nation", "n", selectivity=0.2),
                _T("region", "r", selectivity=0.2),
            ),
            joins=(
                _J("o", "c", key_side="c"),
                _J("l", "o", key_side="o"),
                _J("l", "s", key_side="s"),
                _J("s", "n", key_side="n"),
                _J("n", "r", key_side="r"),
            ),
            group_rows=5,
            sort_rows=5,
        ),
        6: QuerySpec(
            name="Q6",
            tables=(_T("lineitem", "l", selectivity=0.019, column_fraction=0.25),),
            group_rows=1,
        ),
        7: QuerySpec(
            name="Q7",
            tables=(
                _T("supplier", "s", column_fraction=0.4),
                _T("lineitem", "l", selectivity=0.304, column_fraction=0.35),
                _T("orders", "o", column_fraction=0.2),
                _T("customer", "c", column_fraction=0.25),
                _T("nation", "n1", selectivity=0.08),
                _T("nation", "n2", selectivity=0.08),
            ),
            joins=(
                _J("l", "s", key_side="s"),
                _J("l", "o", key_side="o"),
                _J("o", "c", key_side="c"),
                _J("s", "n1", key_side="n1"),
                _J("c", "n2", key_side="n2"),
            ),
            group_rows=4,
            sort_rows=4,
        ),
        8: QuerySpec(
            name="Q8",
            tables=(
                _T("part", "p", selectivity=0.0013, column_fraction=0.3),
                _T("lineitem", "l", column_fraction=0.35),
                _T("orders", "o", selectivity=0.305, column_fraction=0.25),
                _T("customer", "c", column_fraction=0.2),
                _T("supplier", "s", column_fraction=0.3),
                _T("nation", "n1", selectivity=0.2),
                _T("nation", "n2"),
                _T("region", "r", selectivity=0.2),
            ),
            joins=(
                _J("l", "p", key_side="p"),
                _J("l", "s", key_side="s"),
                _J("l", "o", key_side="o"),
                _J("o", "c", key_side="c"),
                _J("c", "n1", key_side="n1"),
                _J("n1", "r", key_side="r"),
                _J("s", "n2", key_side="n2"),
            ),
            group_rows=2,
            sort_rows=2,
        ),
        9: QuerySpec(
            name="Q9",
            tables=(
                _T("part", "p", selectivity=0.055, column_fraction=0.25),
                _T("lineitem", "l", column_fraction=0.45),
                _T("supplier", "s", column_fraction=0.3),
                _T("partsupp", "ps", column_fraction=0.4),
                _T("orders", "o", column_fraction=0.2),
                _T("nation", "n"),
            ),
            joins=(
                _J("l", "p", key_side="p"),
                _J("l", "s", key_side="s"),
                _J("l", "ps", key_side="ps"),
                _J("l", "o", key_side="o"),
                _J("s", "n", key_side="n"),
            ),
            group_rows=175,
            sort_rows=175,
        ),
        10: QuerySpec(
            name="Q10",
            tables=(
                _T("customer", "c", column_fraction=0.5),
                _T("orders", "o", selectivity=0.038, column_fraction=0.3),
                _T("lineitem", "l", selectivity=0.247, column_fraction=0.3),
                _T("nation", "n"),
            ),
            joins=(
                _J("o", "c", key_side="c"),
                _J("l", "o", key_side="o"),
                _J("c", "n", key_side="n"),
            ),
            group_rows=3_800.0 * sf,
            sort_rows=3_800.0 * sf,
            top=20,
        ),
        11: QuerySpec(
            name="Q11",
            tables=(
                _T("partsupp", "ps", column_fraction=0.5),
                _T("supplier", "s", column_fraction=0.3),
                _T("nation", "n", selectivity=0.04),
            ),
            joins=(_J("ps", "s", key_side="s"), _J("s", "n", key_side="n")),
            group_rows=30_000.0 * sf,
            sort_rows=3_000.0 * sf,
            correlated_passes=1.5,  # the HAVING threshold subquery
        ),
        12: QuerySpec(
            name="Q12",
            tables=(
                _T("orders", "o", column_fraction=0.2),
                _T("lineitem", "l", selectivity=0.0052, column_fraction=0.35),
            ),
            joins=(_J("l", "o", key_side="o"),),
            group_rows=2,
            sort_rows=2,
        ),
        13: QuerySpec(
            name="Q13",
            tables=(
                _T("customer", "c", column_fraction=0.15),
                _T("orders", "o", selectivity=0.98, column_fraction=0.25),
            ),
            joins=(_J("o", "c", key_side="c", kind=JoinKind.OUTER),),
            group_rows=42,
            sort_rows=42,
        ),
        14: QuerySpec(
            name="Q14",
            tables=(
                _T("lineitem", "l", selectivity=0.0076, column_fraction=0.3),
                _T("part", "p", column_fraction=0.25),
            ),
            joins=(_J("l", "p", key_side="p"),),
            group_rows=1,
        ),
        15: QuerySpec(
            name="Q15",
            tables=(
                _T("lineitem", "l", selectivity=0.019, column_fraction=0.3),
                _T("supplier", "s", column_fraction=0.4),
            ),
            joins=(_J("l", "s", key_side="s"),),
            group_rows=10_000.0 * sf,
            sort_rows=1,
            correlated_passes=1.6,  # the max-revenue view is evaluated twice
        ),
        16: QuerySpec(
            name="Q16",
            tables=(
                _T("partsupp", "ps", column_fraction=0.4),
                _T("part", "p", selectivity=0.083, column_fraction=0.35),
                _T("supplier", "s", selectivity=0.0005, column_fraction=0.3),
            ),
            joins=(
                _J("ps", "p", key_side="p"),
                _J("ps", "s", key_side="s", kind=JoinKind.ANTI, preserved="ps"),
            ),
            group_rows=120_000.0 * sf,
            sort_rows=18_000.0 * sf,
            optimizer_cost_scale=2.0,  # distinct-count agg overestimated
        ),
        17: QuerySpec(
            name="Q17",
            tables=(
                _T("lineitem", "l", column_fraction=0.25),
                _T("part", "p", selectivity=0.001, column_fraction=0.3),
            ),
            joins=(_J("l", "p", key_side="p"),),
            group_rows=1,
            correlated_passes=2.0,  # per-part average subquery
        ),
        18: QuerySpec(
            name="Q18",
            tables=(
                _T("customer", "c", column_fraction=0.2),
                _T("orders", "o", column_fraction=0.3),
                _T("lineitem", "l", column_fraction=0.2),
            ),
            joins=(_J("l", "o", key_side="o"), _J("o", "c", key_side="c")),
            # The infamous group-by-orderkey over all of lineitem.
            group_rows=1_500_000.0 * sf,
            sort_rows=100,
            top=100,
        ),
        19: QuerySpec(
            name="Q19",
            tables=(
                _T("lineitem", "l", selectivity=0.002, column_fraction=0.4),
                _T("part", "p", selectivity=0.001, column_fraction=0.35),
            ),
            joins=(_J("l", "p", key_side="p"),),
            group_rows=1,
            optimizer_cost_scale=3.0,  # complex OR predicates overestimated
        ),
        20: QuerySpec(
            name="Q20",
            tables=(
                _T("part", "p", selectivity=0.011, column_fraction=0.15),
                _T("partsupp", "ps", column_fraction=0.3),
                _T("lineitem", "l", selectivity=0.155, column_fraction=0.3),
                _T("supplier", "s", column_fraction=0.5),
                _T("nation", "n", selectivity=0.04),
            ),
            joins=(
                _J("ps", "p", key_side="p", kind=JoinKind.SEMI, preserved="ps"),
                _J("ps", "l", key_side="ps", kind=JoinKind.SEMI, preserved="ps",
                   fanout=0.5),
                _J("s", "ps", key_side="s", kind=JoinKind.SEMI, preserved="s",
                   fanout=0.25),
                _J("s", "n", key_side="n"),
            ),
            group_rows=0,
            sort_rows=max(1.0, 100.0 * sf),
            optimizer_cost_scale=0.22,  # nested IN chains underestimated
        ),
        21: QuerySpec(
            name="Q21",
            tables=(
                _T("supplier", "s", column_fraction=0.4),
                _T("lineitem", "l1", selectivity=0.5, column_fraction=0.3),
                _T("orders", "o", selectivity=0.486, column_fraction=0.2),
                _T("nation", "n", selectivity=0.04),
                _T("lineitem", "l2", column_fraction=0.15),
                _T("lineitem", "l3", selectivity=0.5, column_fraction=0.2),
            ),
            joins=(
                _J("l1", "s", key_side="s"),
                _J("l1", "o", key_side="o"),
                _J("s", "n", key_side="n"),
                _J("l1", "l2", key_side="l2", kind=JoinKind.SEMI, preserved="l1",
                   fanout=4.0, wide_build=True),
                _J("l1", "l3", key_side="l3", kind=JoinKind.ANTI, preserved="l1",
                   fanout=0.3, wide_build=True),
            ),
            group_rows=400.0 * sf,
            sort_rows=400.0 * sf,
            top=100,
        ),
        22: QuerySpec(
            name="Q22",
            tables=(
                _T("customer", "c", selectivity=0.02, column_fraction=0.25),
                _T("orders", "o", column_fraction=0.1),
            ),
            joins=(
                _J("c", "o", key_side="c", kind=JoinKind.ANTI, preserved="c",
                   fanout=0.067),
            ),
            group_rows=7,
            sort_rows=7,
            correlated_passes=1.4,  # average-balance subquery
        ),
    }


_SPEC_CACHE: Dict[int, Dict[int, QuerySpec]] = {}


def tpch_query(number: int, scale_factor: int) -> QuerySpec:
    """The spec for TPC-H query *number* (1-22) at a scale factor."""
    if not 1 <= number <= 22:
        raise WorkloadError(f"TPC-H has queries 1..22, not {number}")
    specs = _SPEC_CACHE.get(scale_factor)
    if specs is None:
        specs = _specs_for(scale_factor)
        _SPEC_CACHE[scale_factor] = specs
    return specs[number]


TPCH_QUERIES = tuple(range(1, 23))


class TpchWorkload(Workload):
    """Concurrent TPC-H query streams (3 by default, §3)."""

    primary_kind = "query"

    def __init__(
        self,
        scale_factor: int,
        streams: int = TPCH_QUERY_STREAMS,
        queries: tuple = TPCH_QUERIES,
        dop_hint: int = 0,
    ):
        super().__init__(scale_factor)
        if streams < 1:
            raise WorkloadError("need at least one query stream")
        self.streams = streams
        self.queries = queries
        self.dop_hint = dop_hint

    @property
    def name(self) -> str:
        return "tpch"

    def build_database(self) -> Database:
        return build_tpch(self.scale_factor)

    def execution_characteristics(self) -> ExecutionCharacteristics:
        return execution_profile("tpch", self.scale_factor)

    def engine_parameters(self) -> Dict:
        return {"concurrent_grant_slots": self.streams}

    def spawn_clients(
        self, engine: SqlEngine, tracker: ThroughputTracker, until: float
    ) -> List:
        sim = engine.machine.sim
        rng = engine.machine.streams.get("tpch.streams")
        return sim.spawn_many(
            [
                self._stream(engine, tracker, until, stream_id, rng)
                for stream_id in range(self.streams)
            ],
            name="tpch-stream",
        )

    def _stream(self, engine, tracker, until, stream_id, rng) -> Generator:
        sim = engine.machine.sim
        while sim.now < until:
            order = list(self.queries)
            rng.shuffle(order)
            for number in order:
                if sim.now >= until:
                    break
                spec = tpch_query(number, self.scale_factor)
                result = yield from engine.run_query(spec, dop_hint=self.dop_hint)
                # Client-observed latency includes RESOURCE_SEMAPHORE
                # queueing (zero with overload protection off).
                tracker.record("query", result.client_latency)
                tracker.record(spec.name, result.client_latency)
        return None
