"""Tests for the open-loop arrival driver."""

import pytest

from repro.core.knobs import ResourceAllocation
from repro.engine.engine import SqlEngine
from repro.engine.resource_governor import ResourceGovernor
from repro.errors import WorkloadError
from repro.hardware.machine import Machine
from repro.workloads.arrivals import OpenLoopDriver, latency_curve
from repro.workloads.asdb import AsdbWorkload


def make_pair(seed=0):
    workload = AsdbWorkload(2000, clients=1)  # clients unused open-loop
    machine = Machine(seed=seed)
    ResourceAllocation().apply_to(machine)
    engine = SqlEngine(
        machine, workload.database, workload.execution_characteristics(),
        governor=ResourceGovernor(), **workload.engine_parameters(),
    )
    return workload, engine


class TestOpenLoopDriver:
    def test_low_load_completes_offered_rate(self):
        workload, engine = make_pair()
        driver = OpenLoopDriver(workload, engine, offered_tps=100.0)
        result = driver.run(duration=10.0)
        assert result.completed_tps == pytest.approx(100.0, rel=0.2)
        assert result.dropped == 0

    def test_overload_saturates_below_offered(self):
        workload, engine = make_pair()
        driver = OpenLoopDriver(workload, engine, offered_tps=50_000.0,
                                max_in_flight=500)
        result = driver.run(duration=5.0)
        assert result.completed_tps < 0.5 * result.offered_tps
        assert result.dropped > 0

    def test_latency_grows_with_utilization(self):
        """The queueing knee: p99 latency at high load >> at low load."""
        tails = {}
        for rate in (100.0, 1700.0):
            workload, engine = make_pair()
            driver = OpenLoopDriver(workload, engine, offered_tps=rate)
            result = driver.run(duration=10.0)
            tails[rate] = result.percentile_ms(99)
        assert tails[1700.0] > 2.0 * tails[100.0]

    def test_deterministic_arrivals(self):
        workload, engine = make_pair()
        driver = OpenLoopDriver(workload, engine, offered_tps=50.0,
                                deterministic=True)
        result = driver.run(duration=4.0)
        # Deterministic gaps: exactly rate*duration arrivals (minus edge).
        assert abs(result.completed - 200) <= 2

    def test_invalid_parameters(self):
        workload, engine = make_pair()
        with pytest.raises(WorkloadError):
            OpenLoopDriver(workload, engine, offered_tps=0.0)
        with pytest.raises(WorkloadError):
            OpenLoopDriver(workload, engine, offered_tps=1.0, max_in_flight=0)

    def test_latency_curve_helper(self):
        results = latency_curve(
            workload_factory=lambda: AsdbWorkload(2000, clients=1),
            engine_factory=lambda w: make_pair()[1],
            offered_rates=[50.0, 200.0],
            duration=4.0,
        )
        assert len(results) == 2
        assert results[0].offered_tps == 50.0
        assert all(r.completed > 0 for r in results)


class TestRateTraces:
    def _trace(self, kind, **overrides):
        from repro.workloads.arrivals import ArrivalSpec

        spec = ArrivalSpec(offered_tps=100.0, trace=kind, **overrides)
        machine = Machine(seed=0)
        return spec.build_trace(10.0, machine.streams.get("trace-test"))

    def test_poisson_and_deterministic_have_no_trace(self):
        """The historical kinds draw the exact pre-trace RNG sequence."""
        assert self._trace("poisson") is None
        assert self._trace("deterministic") is None

    def test_diurnal_starts_at_trough_and_peaks_mid_period(self):
        trace = self._trace("diurnal", period_s=10.0, amplitude=0.5)
        assert trace.rate_at(0.0) == pytest.approx(50.0)
        assert trace.rate_at(5.0) == pytest.approx(150.0)
        assert trace.peak_rate() == pytest.approx(150.0)

    def test_burst_alternates_between_two_rates(self):
        trace = self._trace("burst", burst_multiplier=8.0)
        rates = {round(trace.rate_at(t * 0.05), 6) for t in range(200)}
        assert len(rates) == 2
        assert max(rates) == pytest.approx(8.0 * min(rates))

    def test_flash_crowd_is_a_step_window(self):
        trace = self._trace("flash-crowd", flash_at=0.5, flash_magnitude=10.0,
                            flash_width=0.1)
        assert trace.rate_at(1.0) == pytest.approx(100.0)
        assert trace.rate_at(5.5) == pytest.approx(1000.0)
        assert trace.rate_at(9.0) == pytest.approx(100.0)

    def test_invalid_trace_kind_rejected(self):
        from repro.errors import WorkloadError
        from repro.workloads.arrivals import ArrivalSpec

        with pytest.raises(WorkloadError):
            ArrivalSpec(offered_tps=1.0, trace="lunar")


class TestTenantAttribution:
    def test_sheds_are_counted_per_tenant(self):
        from repro.workloads.arrivals import OpenLoopDriver, TenantTraffic

        workload, engine = make_pair()
        tenants = (TenantTraffic(name="a", weight=3.0),
                   TenantTraffic(name="b", weight=1.0))
        driver = OpenLoopDriver(workload, engine, offered_tps=30_000.0,
                                max_in_flight=50, tenants=tenants)
        result = driver.run(duration=2.0)
        assert result.dropped > 0
        assert sum(result.dropped_by_tenant.values()) == result.dropped
        assert sum(result.completed_by_tenant.values()) == result.completed
        # 3:1 weights: tenant a carries (and sheds) the bulk.
        assert result.dropped_by_tenant["a"] > result.dropped_by_tenant["b"]


class TestOpenLoopSweep:
    def test_sweep_routes_through_the_result_cache(self, tmp_path):
        from repro.core.resultcache import ResultCache
        from repro.workloads.arrivals import run_open_loop_sweep

        cache = ResultCache(tmp_path)
        rates = [50.0, 150.0]
        first = run_open_loop_sweep("asdb", 2000, rates, duration=2.0,
                                    cache=cache)
        assert [m.offered_tps for m in first] == rates
        assert all(m.tracker.counts.get("txn", 0) > 0 for m in first)
        second = run_open_loop_sweep("asdb", 2000, rates, duration=2.0,
                                     cache=cache)
        assert cache.hits >= len(rates)
        assert [m.primary_metric for m in second] == \
               [m.primary_metric for m in first]

    def test_sweep_carries_shed_counts_per_tenant(self):
        from repro.workloads.arrivals import (
            ArrivalSpec,
            TenantTraffic,
            run_open_loop_sweep,
        )

        arrival = ArrivalSpec(
            offered_tps=1.0, max_in_flight=20,
            tenants=(TenantTraffic(name="gold", priority=0),
                     TenantTraffic(name="scrap", priority=2)),
        )
        [m] = run_open_loop_sweep("asdb", 2000, [20_000.0], arrival=arrival,
                                  duration=1.5)
        assert m.arrival_sheds > 0
        assert set(m.sheds_by_tenant) <= {"gold", "scrap"}
        assert sum(m.sheds_by_tenant.values()) == m.arrival_sheds
