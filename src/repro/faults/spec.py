"""Fault specifications: frozen, cache-canonical descriptions of faults.

Every spec is a frozen dataclass of primitives so that it composes with
:func:`repro.core.resultcache.canonical_json` (faults are part of the
experiment cache key) and pickles cleanly into worker processes.  Specs
carry *when* and *how hard*; the :class:`~repro.faults.injector.FaultInjector`
turns simulation-level specs into scheduled simulator events, and the
supervised runner (:mod:`repro.core.runner`) interprets harness-level
specs inside its workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import FaultInjectionError


@dataclass(frozen=True)
class FaultSpec:
    """Base class for all fault specifications."""


@dataclass(frozen=True)
class SimulationFault(FaultSpec):
    """A fault injected *inside* one experiment's simulation."""


@dataclass(frozen=True)
class HarnessFault(FaultSpec):
    """A fault injected into the *worker process* running an experiment."""


@dataclass(frozen=True)
class StorageBrownout(SimulationFault):
    """Temporary collapse of the NVMe device's bandwidth.

    From ``start`` for ``duration`` simulated seconds, the device's read
    and write bandwidths are scaled by ``read_factor`` / ``write_factor``
    (1.0 = unaffected, 0.05 = a 95% brownout).  Models a shared SSD
    hitting a garbage-collection stall or a noisy neighbour saturating
    the device — §6's blocking durability paths under a degraded device.
    """

    start: float
    duration: float
    read_factor: float = 1.0
    write_factor: float = 0.1
    #: Multiplier on per-page random-read latency (GC stalls inflate
    #: operation latency, not just streaming throughput); 1.0 = none.
    latency_factor: float = 1.0

    def __post_init__(self):
        if self.start < 0 or self.duration <= 0:
            raise FaultInjectionError("brownout needs start >= 0, duration > 0")
        for name, factor in (("read_factor", self.read_factor),
                             ("write_factor", self.write_factor)):
            if not 0 < factor <= 1.0:
                raise FaultInjectionError(f"{name} must be in (0, 1]")
        if self.latency_factor < 1.0:
            raise FaultInjectionError("latency_factor must be >= 1")


@dataclass(frozen=True)
class TransientWriteErrors(SimulationFault):
    """Transient I/O errors on the device's write path.

    During the window, each write operation fails with probability
    ``failure_rate`` (drawn from the machine's seeded ``faults.io``
    stream, so runs are reproducible).  The WAL absorbs these through
    bounded retry with exponential backoff and a group-commit re-flush
    of the whole batch; no commit is ever acknowledged on a failed
    flush.
    """

    start: float
    duration: float
    failure_rate: float = 1.0

    def __post_init__(self):
        if self.start < 0 or self.duration <= 0:
            raise FaultInjectionError("error window needs start >= 0, duration > 0")
        if not 0 < self.failure_rate <= 1.0:
            raise FaultInjectionError("failure_rate must be in (0, 1]")


@dataclass(frozen=True)
class CoreOffline(SimulationFault):
    """Mid-run core offlining through the cpuset path.

    At ``at`` the cpuset shrinks to ``remaining_logical`` CPUs (paper §4
    allocation order) and the engine's core pools rescale; with
    ``duration`` set, the original cpuset is restored afterwards.
    Models a hot-unplug, a co-tenant stealing the cpuset, or thermal
    throttling taking cores away mid-measurement.
    """

    at: float
    remaining_logical: int
    duration: float = 0.0  # 0 = permanent for the rest of the run

    def __post_init__(self):
        if self.at < 0 or self.duration < 0:
            raise FaultInjectionError("offline needs at >= 0, duration >= 0")
        if self.remaining_logical < 1:
            raise FaultInjectionError("must leave at least one logical CPU")


@dataclass(frozen=True)
class CrashPoint(SimulationFault):
    """A crash/recover event at simulated time ``at``.

    The injector freezes the WAL's durable image mid-batch, runs
    checkpoint-aware WAL replay (:func:`repro.faults.recovery.recover`),
    and checks the durability invariants: every durable-committed
    transaction is recovered and replay is idempotent.  A violation
    raises :class:`~repro.errors.RecoveryError` and fails the
    experiment; a clean recovery is recorded in the measurement's fault
    summary and the run continues (modelling a successful failover).
    """

    at: float

    def __post_init__(self):
        if self.at < 0:
            raise FaultInjectionError("crash point must be at >= 0")


@dataclass(frozen=True)
class GrantStorm(SimulationFault):
    """A burst of memory-grant requests flooding RESOURCE_SEMAPHORE.

    At ``at``, ``queries`` synthetic grant requests arrive at once, each
    asking for ``pool_fraction`` of the query-memory pool and holding its
    grant for ``hold_seconds`` before releasing.  Models a surge of
    ad-hoc analytics landing on a loaded server — the overload the §10
    admission policies exist to absorb.  With overload protection off
    the storm is invisible (admission is unconditional and nothing is
    charged); with it on, the storm drives real queries into the grant
    queue and through the timeout/degrade paths.
    """

    at: float
    queries: int = 8
    pool_fraction: float = 0.25
    hold_seconds: float = 30.0

    def __post_init__(self):
        if self.at < 0:
            raise FaultInjectionError("storm needs at >= 0")
        if self.queries < 1:
            raise FaultInjectionError("storm needs queries >= 1")
        if not 0 < self.pool_fraction <= 1.0:
            raise FaultInjectionError("pool_fraction must be in (0, 1]")
        if self.hold_seconds <= 0:
            raise FaultInjectionError("hold_seconds must be positive")


@dataclass(frozen=True)
class ReplicaPartition(SimulationFault):
    """Network partition isolating one fleet replica.

    From ``start`` for ``duration`` simulated seconds, replica
    ``replica`` of a :class:`~repro.fleet.replicas.ReplicaGroup` neither
    receives shipped WAL records nor emits heartbeats; writes it held
    before the partition stay durable on its local device.  A
    partitioned primary cannot reach a quorum, so the group's failure
    detector promotes a secondary and the healed replica rejoins as a
    fenced secondary through checkpoint-based catch-up.  Fleet-level
    only: the single-engine :class:`~repro.faults.injector.FaultInjector`
    has no driver for it (there is no second replica to partition from).
    """

    start: float
    duration: float
    replica: int = 0

    def __post_init__(self):
        if self.start < 0 or self.duration <= 0:
            raise FaultInjectionError("partition needs start >= 0, duration > 0")
        if self.replica < 0:
            raise FaultInjectionError("replica index must be >= 0")


@dataclass(frozen=True)
class WorkerCrash(HarnessFault):
    """Kill the worker process running this config (first ``attempts`` tries).

    In a process pool the worker dies with ``os._exit(exit_code)``, so
    the supervisor observes a genuine ``BrokenProcessPool``; the
    in-process runner raises
    :class:`~repro.errors.SimulatedWorkerCrash` instead.  Attempt
    numbering is global across journal resumes, so a crash spec with
    ``attempts=1`` fails once and succeeds on retry or resume.
    """

    attempts: int = 1
    exit_code: int = 32

    def __post_init__(self):
        if self.attempts < 1:
            raise FaultInjectionError("attempts must be >= 1")

    def fires_on(self, attempt: int) -> bool:
        return attempt < self.attempts


@dataclass(frozen=True)
class WorkerStall(HarnessFault):
    """Hang the worker for ``seconds`` of wall-clock time (first
    ``attempts`` tries) before running the experiment — the supervised
    runner's per-experiment timeout is what breaks the stall."""

    seconds: float
    attempts: int = 1

    def __post_init__(self):
        if self.seconds <= 0 or self.attempts < 1:
            raise FaultInjectionError("stall needs seconds > 0, attempts >= 1")

    def fires_on(self, attempt: int) -> bool:
        return attempt < self.attempts


def simulation_faults(faults: Sequence[FaultSpec]) -> Tuple[SimulationFault, ...]:
    """The simulation-level subset of a config's fault tuple."""
    return tuple(f for f in faults if isinstance(f, SimulationFault))


def harness_faults(faults: Sequence[FaultSpec]) -> Tuple[HarnessFault, ...]:
    """The harness-level subset of a config's fault tuple."""
    return tuple(f for f in faults if isinstance(f, HarnessFault))
