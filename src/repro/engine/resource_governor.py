"""Resource governor: MAXDOP, grant percent, and affinity (§3, §4, §7).

The paper restricts cores with cpuset *and* caps MAXDOP with "SQL Server's
resource governor settings"; §7 additionally uses the MAXDOP query hint.
This object carries those engine-side settings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import DEFAULT_GRANT_PERCENT
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResourceGovernor:
    """Engine-level resource settings for a run."""

    max_dop: int = 32
    grant_percent: float = DEFAULT_GRANT_PERCENT

    def __post_init__(self):
        if self.max_dop < 1:
            raise ConfigurationError("max_dop must be >= 1")
        if not 0 < self.grant_percent <= 100:
            raise ConfigurationError("grant percent in (0, 100]")

    def effective_dop(self, allocated_logical_cpus: int, hint: int = 0) -> int:
        """DOP after the governor cap, core allocation, and query hint.

        Mirrors the paper's methodology of limiting MAXDOP to the number
        of allocated cores (§4) and applying per-query hints (§7).
        """
        dop = min(self.max_dop, allocated_logical_cpus)
        if hint > 0:
            dop = min(dop, hint)
        return max(1, dop)
