"""A routed multi-backend engine behind the single-engine facade.

:class:`RoutedEngine` runs several backend personalities side by side on
one machine — each on a disjoint cpuset, private CAT partition, and DRAM
share (the :func:`~repro.core.colocation.tenant_machine` partitioning;
the NVMe device stays shared, as §10's co-location discussion requires)
— and routes every query through a
:class:`~repro.backends.router.Router`.  It exposes exactly the engine
surface the workload clients and the experiment harness touch
(``machine``, ``run_query``, ``run_transaction``, ``buffer_pool``,
``locks``, ``database``, ``optimize``, ``semaphore``, ``sqlos``,
``counter_totals``), so closed-loop clients drive a heterogeneous fleet
without knowing it.

Transactions are not routed per-call: they are pinned to the backend
with the best point-lookup score (the rowstore, unless it is not
configured), matching how consolidation layers keep OLTP on the
row-oriented engine and float analytics.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, Generator, List, Sequence, Tuple

from repro.backends.base import EngineBackend, make_backend
from repro.backends.router import Router
from repro.engine.engine import SqlEngine
from repro.engine.executor import TransactionDemand
from repro.engine.optimizer.optimizer import OptimizedQuery
from repro.engine.optimizer.queryspec import QuerySpec
from repro.errors import ConfigurationError
from repro.hardware.counters import SSD_READ_BYTES, SSD_WRITE_BYTES
from repro.hardware.machine import Machine
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - hint-only (avoids a repro.core cycle)
    from repro.core.knobs import ResourceAllocation


def partition_allocation(
    allocation: "ResourceAllocation", count: int
) -> List["ResourceAllocation"]:
    """Split one allocation into *count* near-equal sub-allocations.

    Cores and LLC (2 MB CAT granularity) are divided with the remainder
    going to the earlier backends; every slice needs at least one core
    and one CAT way-pair, so a routed run requires
    ``logical_cores >= count`` and ``llc_mb >= 2 * count``.
    """
    if allocation.logical_cores < count:
        raise ConfigurationError(
            f"routed run needs at least {count} cores "
            f"(one per backend); allocation has {allocation.logical_cores}"
        )
    if allocation.llc_mb < 2 * count:
        raise ConfigurationError(
            f"routed run needs at least {2 * count} MB LLC "
            f"(2 MB CAT granularity per backend); allocation has "
            f"{allocation.llc_mb} MB"
        )
    cores = [allocation.logical_cores // count] * count
    for i in range(allocation.logical_cores % count):
        cores[i] += 1
    pairs = allocation.llc_mb // 2
    llc = [(pairs // count) * 2] * count
    for i in range(pairs % count):
        llc[i] += 2
    return [
        replace(allocation, logical_cores=cores[i], llc_mb=llc[i])
        for i in range(count)
    ]


class _MergedSemaphore:
    """Summed RESOURCE_SEMAPHORE counters across the fleet's engines."""

    def __init__(self, engines: Dict[str, SqlEngine]):
        self._engines = engines

    def summary(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for engine in self._engines.values():
            for key, value in engine.semaphore.summary().items():
                if key == "grant_queue_peak":
                    totals[key] = max(totals.get(key, 0.0), value)
                else:
                    totals[key] = totals.get(key, 0.0) + value
        return totals


class _MergedSqlos:
    """Fleet-level MPKI and SMT multiplier, instruction-weighted."""

    def __init__(self, engines: Dict[str, SqlEngine]):
        self._engines = engines

    def _weighted(self, attribute: str) -> float:
        total_instructions = 0.0
        accumulated = 0.0
        fallback = 0.0
        for engine in self._engines.values():
            value = getattr(engine.sqlos, attribute)
            fallback = value
            instructions = engine.sqlos.instructions_retired()
            total_instructions += instructions
            accumulated += value * instructions
        if total_instructions <= 0:
            return fallback
        return accumulated / total_instructions

    @property
    def mpki(self) -> float:
        return self._weighted("mpki")

    @property
    def smt_multiplier(self) -> float:
        return self._weighted("smt_multiplier")


class _MergedLockAccounting:
    """Summed wait-time breakdown across the fleet's lock managers."""

    def __init__(self, engines: Dict[str, SqlEngine]):
        self._engines = engines

    @property
    def wait_time(self) -> Dict:
        totals: Dict = {}
        for engine in self._engines.values():
            for wait_type, seconds in engine.locks.accounting.wait_time.items():
                totals[wait_type] = totals.get(wait_type, 0.0) + seconds
        return totals


class _MergedLocks:
    """Fleet lock view: accounting merges across engines, while the lock
    *tables* (row locks, page latches, latches) are the transaction
    backend's — transactions all execute there, so that is where
    contention structure lives."""

    def __init__(self, engines: Dict[str, SqlEngine], txn_engine: SqlEngine):
        self.accounting = _MergedLockAccounting(engines)
        self._txn_locks = txn_engine.locks

    @property
    def row_locks(self):
        return self._txn_locks.row_locks

    @property
    def page_latches(self):
        return self._txn_locks.page_latches

    @property
    def latches(self):
        return self._txn_locks.latches


class RoutedEngine:
    """Several backend engines on one machine, behind a router.

    Built by :func:`build_routed_engine`; ``machine`` is the *base*
    machine (whose simulator drives every partition), while each backend
    engine lives on its own partitioned view of it.
    """

    def __init__(
        self,
        machine: Machine,
        backends: Sequence[EngineBackend],
        engines: Dict[str, SqlEngine],
        router: Router,
    ):
        self.machine = machine
        self.backends = {backend.name: backend for backend in backends}
        self.engines = engines
        self.router = router
        # Transactions pin to the best point-access personality.
        self._txn_backend = max(
            self.router.order,
            key=lambda name: self.backends[name]
            .resource_profile()
            .point_lookup_score,
        )
        self.semaphore = _MergedSemaphore(engines)
        self.sqlos = _MergedSqlos(engines)
        self.locks = _MergedLocks(engines, self.engines[self._txn_backend])

    # -- single-engine facade (the surface workload clients touch) ----------

    @property
    def transaction_engine(self) -> SqlEngine:
        return self.engines[self._txn_backend]

    @property
    def buffer_pool(self):
        return self.transaction_engine.buffer_pool

    @property
    def database(self):
        return self.transaction_engine.database

    @property
    def executor(self):
        return self.transaction_engine.executor

    def run_query(self, spec: QuerySpec, dop_hint: int = 0) -> Generator:
        """Generator: route, then execute on the chosen backend."""
        name, engine = self.router.engine_for(spec)
        self.router.note_start(name)
        try:
            result = yield from engine.run_query(spec, dop_hint=dop_hint)
        finally:
            self.router.note_done(name)
        return result

    def run_transaction(self, demand: TransactionDemand) -> Generator:
        result = yield from self.transaction_engine.run_transaction(demand)
        return result

    def optimize(self, spec: QuerySpec, dop_hint: int = 0) -> OptimizedQuery:
        """Plan on the backend the router would pick, without recording a
        decision (plan-signature collection must not skew the counters)."""
        name = self.router.peek(spec)
        return self.engines[name].optimize(spec, dop_hint=dop_hint)

    # -- health ------------------------------------------------------------------

    def suspend_backend(self, name: str) -> None:
        """Route queries around *name* (fleet health signal) until
        restored; transactions stay pinned — their backend holds the
        lock tables, so moving them mid-run would corrupt contention
        state rather than improve availability."""
        self.router.suspend_backend(name)

    def restore_backend(self, name: str) -> None:
        self.router.restore_backend(name)

    # -- counters ------------------------------------------------------------

    def counter_totals(self) -> Dict[str, float]:
        """Fleet totals: CPU-side counters sum across partitions; the SSD
        is one shared device, so its counters are taken once."""
        totals: Dict[str, float] = {}
        for engine in self.engines.values():
            for key, value in engine.counter_totals().items():
                if key in (SSD_READ_BYTES, SSD_WRITE_BYTES):
                    totals[key] = value
                else:
                    totals[key] = totals.get(key, 0.0) + value
        return totals


def build_routed_engine(
    machine: Machine,
    workload: Workload,
    allocation: "ResourceAllocation",
    backend_names: Sequence[str],
    policy: str,
) -> RoutedEngine:
    """Partition *machine* across *backend_names* and wire the router.

    The machine must already have the allocation applied (cpuset, CAT,
    blkio) — each backend then gets a disjoint slice of the *allocated*
    resources, in the §4 core-allocation order, with equal DRAM shares.
    The SSD and its blkio limits stay shared.
    """
    from repro.core.colocation import tenant_machine

    names = list(backend_names)
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate backends in router spec: {names}")
    backends = [make_backend(name) for name in names]
    subs = partition_allocation(allocation, len(backends))

    order = sorted(
        machine.topology.paper_allocation(allocation.logical_cores),
        key=lambda cpu_id: (machine.topology.cpu(cpu_id).smt_index,
                            machine.topology.cpu(cpu_id).physical_core),
    )
    engines: Dict[str, SqlEngine] = {}
    cursor = 0
    fraction = 1.0 / len(backends)
    for backend, sub in zip(backends, subs):
        cpu_ids = frozenset(order[cursor:cursor + sub.logical_cores])
        cursor += sub.logical_cores
        view = tenant_machine(machine, cpu_ids, sub.llc_mb, fraction)
        engines[backend.name] = backend.build_engine(view, workload, sub)
    router = Router(
        engines=engines,
        profiles={b.name: b.resource_profile() for b in backends},
        policy=policy,
    )
    return RoutedEngine(
        machine=machine, backends=backends, engines=engines, router=router
    )
