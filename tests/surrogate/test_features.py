"""Feature extraction: deterministic, and identical from either side
(config in hand vs measurement recovered from the cache)."""

import dataclasses

import numpy as np
import pytest

from repro.core.experiment import Experiment
from repro.surrogate.features import (
    FEATURE_NAMES,
    features_for_config,
    features_for_measurement,
    knee_adjacent_llc_mb,
)
from tests.surrogate.conftest import grid_config


class TestDeterminism:
    def test_repeated_extraction_is_bit_identical(self):
        config = grid_config()
        first = features_for_config(config)
        second = features_for_config(config)
        assert first.tobytes() == second.tobytes()

    def test_vector_matches_schema(self):
        vector = features_for_config(grid_config())
        assert vector.shape == (len(FEATURE_NAMES),)
        assert vector.dtype == np.float64
        assert np.isfinite(vector).all()

    def test_knob_changes_move_the_vector(self):
        base = features_for_config(grid_config())
        for other in (grid_config(cores=8), grid_config(llc_mb=16),
                      grid_config(workload="tpch", scale_factor=10)):
            assert not np.array_equal(base, features_for_config(other))


class TestConfigMeasurementParity:
    """The harvest path and the serve path must agree byte for byte."""

    @pytest.fixture(scope="class")
    def run(self):
        config = grid_config(cores=2, llc_mb=8)
        return config, Experiment(config).run()

    def test_parity(self, run):
        config, measurement = run
        assert (features_for_config(config).tobytes()
                == features_for_measurement(measurement).tobytes())

    def test_routed_labels_agree(self, run):
        config, measurement = run
        routed_config = dataclasses.replace(config, router="rule-based")
        routed_measurement = dataclasses.replace(
            measurement, backend="router:rule-based")
        assert (features_for_config(routed_config).tobytes()
                == features_for_measurement(routed_measurement).tobytes())

    def test_unknown_backend_label_does_not_raise(self, run):
        _, measurement = run
        relabeled = dataclasses.replace(measurement, backend="from-the-future")
        vector = features_for_measurement(relabeled)
        assert np.isfinite(vector).all()


class TestKneeAdjacency:
    def test_grid_granularity(self):
        sizes = knee_adjacent_llc_mb("asdb", 2000)
        assert sizes == tuple(sorted(sizes))
        assert all(s >= 2 and s % 2 == 0 for s in sizes)

    def test_deterministic(self):
        assert (knee_adjacent_llc_mb("tpce", 5000)
                == knee_adjacent_llc_mb("tpce", 5000))
