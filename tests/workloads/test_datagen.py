"""Tests for the synthetic data generator."""

import pytest

from repro.engine.schemas import build_tpch, build_tpce
from repro.errors import WorkloadError
from repro.workloads.datagen import (
    ColumnSpec,
    DataGenerator,
    default_columns,
    validate_against_catalog,
)


@pytest.fixture(scope="module")
def tpch_gen():
    return DataGenerator(build_tpch(10), seed=42)


class TestDataGenerator:
    def test_rows_have_all_columns(self, tpch_gen):
        rows = tpch_gen.sample("supplier", n=3)
        assert len(rows) == 3
        expected = {c.name for c in default_columns(
            tpch_gen.database.table("supplier"))}
        assert set(rows[0]) == expected

    def test_keys_sequential_across_batches(self, tpch_gen):
        rows = list(tpch_gen.rows("supplier", limit=25_000, batch_size=10_000))
        keys = [r["supplier_key"] for r in rows]
        assert keys == list(range(1, 25_001))

    def test_deterministic_given_seed(self):
        db = build_tpch(10)
        a = DataGenerator(db, seed=7).sample("nation", n=5)
        b = DataGenerator(db, seed=7).sample("nation", n=5)
        assert a == b

    def test_seed_changes_values(self):
        db = build_tpch(10)
        a = DataGenerator(db, seed=1).sample("nation", n=5)
        b = DataGenerator(db, seed=2).sample("nation", n=5)
        assert any(x["amount"] != y["amount"] for x, y in zip(a, b))

    def test_limit_respects_cardinality(self, tpch_gen):
        rows = list(tpch_gen.rows("region", limit=1000))
        assert len(rows) == 5  # region has 5 rows

    def test_text_width_matches_row_bytes(self, tpch_gen):
        table = tpch_gen.database.table("customer")
        spec = next(c for c in default_columns(table) if c.kind == "text")
        row = tpch_gen.sample("customer", n=1)[0]
        assert len(row["payload"]) == spec.width_bytes

    def test_fk_values_in_range(self, tpch_gen):
        table = tpch_gen.database.table("orders")
        spec = next(c for c in default_columns(table) if c.kind == "fk")
        rows = tpch_gen.sample("orders", n=500)
        assert all(1 <= r["fk"] <= spec.fk_cardinality for r in rows)

    def test_unknown_column_kind_rejected(self, tpch_gen):
        bad = [ColumnSpec(name="x", kind="blob")]
        with pytest.raises(WorkloadError):
            list(tpch_gen.rows("nation", limit=1, columns=bad))

    def test_estimated_bytes(self, tpch_gen):
        table = tpch_gen.database.table("lineitem")
        assert tpch_gen.estimated_bytes("lineitem") == pytest.approx(
            table.rows * table.row_bytes
        )

    def test_validation_report(self):
        generator = DataGenerator(build_tpce(5000), seed=0)
        report = validate_against_catalog(generator, "trade", sample_size=500)
        assert report["keys_unique"]
        assert report["keys_monotone"]
        assert report["within_cardinality"]
